package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"efind/internal/ixclient"
	"efind/internal/mapreduce"
	"efind/internal/sim"
	"efind/internal/sketch"
)

// Counter name helpers: EFind statistics ride on MapReduce counters
// (§4.2), namespaced per operator. The per-operator record/byte counters
// live here; the per-index counters are owned by the index client pipeline
// (internal/ixclient), which maintains them, and are aliased for the
// statistics collector below.
func ctrPreIn(op string) string { return "efind." + op + ".pre.in.records" }

// Piggyback-build counters (adaptive index creation). The time counter
// deliberately ends in ".build.ns", not ".serve.ns": the job service's
// tenant budgets sum every ".serve.ns" counter, and build time is a
// deliberate investment, not serve traffic.
func ctrBuildRecords(op, ix string) string { return "efind." + op + "." + ix + ".build.records" }
func ctrBuildSplits(op, ix string) string  { return "efind." + op + "." + ix + ".build.splits" }
func ctrBuildNS(op, ix string) string      { return "efind." + op + "." + ix + ".build.ns" }

// CtrBuildCommitted counts the splits committed into buildable indices
// at the job's post-run serial point.
const CtrBuildCommitted = "efind.build.splits.committed"

func ctrPreInBytes(op string) string  { return "efind." + op + ".pre.in.bytes" }
func ctrPreOutBytes(op string) string { return "efind." + op + ".pre.out.bytes" }
func ctrIdxBytes(op string) string    { return "efind." + op + ".idx.out.bytes" }
func ctrPostBytes(op string) string   { return "efind." + op + ".post.out.bytes" }
func ctrPostRecords(op string) string { return "efind." + op + ".post.out.records" }

// Per-index counter names, defined by the index client pipeline.
var (
	ctrKeys     = ixclient.CtrKeys
	ctrKeyBytes = ixclient.CtrKeyBytes
	ctrValBytes = ixclient.CtrValBytes
	ctrLookups  = ixclient.CtrLookups
	ctrServeNS  = ixclient.CtrServeNS
	ctrProbes   = ixclient.CtrProbes
	ctrMisses   = ixclient.CtrMisses
	ctrMulti    = ixclient.CtrMulti
	skKeys      = ixclient.SkKeys
)

// ctrMapOutBytes measures the paper's Smap term (output size of the
// original Map per input record of the head operators).
const (
	ctrMapOutBytes   = "efind.map.out.bytes"
	ctrMapOutRecords = "efind.map.out.records"
	fmWidth          = ixclient.FMWidth
)

// IndexStats aggregates one (operator, index) pair's Table 1 terms.
type IndexStats struct {
	// Nik is the average number of lookup keys per input record.
	Nik float64
	// Sik and Siv are the average key and result sizes per lookup key.
	Sik, Siv float64
	// Tj is the average index serve time per lookup in seconds.
	Tj float64
	// R is the measured lookup-cache miss ratio (shadow-measured when the
	// cache strategy is off).
	R float64
	// Theta is the average number of duplicates per distinct lookup key,
	// estimated with Flajolet–Martin sketches OR-ed across tasks.
	Theta float64
	// MultiKey reports whether any record produced more than one key for
	// this index; re-partitioning requires at most one key per record.
	MultiKey bool
	// Lookups is the total number of index lookups actually performed.
	Lookups int64
}

// OperatorStats aggregates one operator's record-level terms.
type OperatorStats struct {
	// Records is the total number of records entering preProcess.
	Records int64
	// N1 is the per-machine average input count (Table 1's N1).
	N1 float64
	// S1, Spre, Sidx, Spost are the paper's average sizes per input
	// record at the respective pipeline points.
	S1, Spre, Sidx, Spost float64
	// Smap is the average original-Map output per operator input record
	// (only meaningful for head operators).
	Smap float64
	// PostRecords is the number of records postProcess emitted.
	PostRecords int64
	// Index holds per-index statistics keyed by accessor name.
	Index map[string]IndexStats
	// MaxRelStdDev is the largest stddev/mean across the collected
	// per-task samples of this operator's statistics; Algorithm 1 refuses
	// to re-optimize until it is below the variance threshold.
	MaxRelStdDev float64
	// Tasks is the number of task samples aggregated.
	Tasks int
}

// Env carries the offline-measured environment constants of Table 1.
type Env struct {
	// BW is the network bandwidth between two machines, bytes/second.
	BW float64
	// F is the paper's f: cost of storing and retrieving one byte via the
	// distributed file system, seconds/byte.
	F float64
	// Tcache is the lookup-cache probe time, seconds.
	Tcache float64
	// Nodes is the number of parallel lookup lanes used to convert record
	// totals into the per-lane N1 term. Table 1 defines N1 per machine;
	// because every map slot issues lookups concurrently, the calibrated
	// model uses total map slots here so that modeled costs are in the
	// same units as measured makespans (a documented deviation).
	Nodes int
	// JobOverhead is the fixed cost of adding one extra MapReduce job
	// (scheduling and task startup of the shuffling job). The paper notes
	// that "the cost of adding an extra MapReduce job ... can be high"
	// but leaves it out of formulas (3)–(4); modeling it explicitly keeps
	// the optimizer from chaining marginal shuffles.
	JobOverhead float64
	// LaneFactor is map slots per reduce slot. Lookups behind the
	// BoundaryIdx/BoundaryLate materializations run inside reduce tasks,
	// which have fewer parallel lanes than map tasks; their lookup term
	// is scaled up by this factor.
	LaneFactor float64
}

// laneFactor returns the reduce-lane penalty, at least 1.
func (e Env) laneFactor() float64 {
	if e.LaneFactor < 1 {
		return 1
	}
	return e.LaneFactor
}

// EnvFromCluster derives Env from the simulated cluster configuration.
func EnvFromCluster(c *sim.Cluster) Env {
	cfg := c.Config()
	return Env{
		BW:          cfg.NetBandwidth,
		F:           cfg.DFSWriteCost,
		Tcache:      cfg.CacheProbeTime,
		Nodes:       c.MapSlots(),
		JobOverhead: 4 * cfg.TaskStartup,
		LaneFactor:  float64(c.MapSlots()) / float64(c.ReduceSlots()),
	}
}

// Catalog stores operator statistics across jobs (the paper's catalog
// component, Figure 8). Safe for concurrent use.
type Catalog struct {
	mu  sync.Mutex
	ops map[string]*OperatorStats
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{ops: make(map[string]*OperatorStats)} }

// Get returns the stats for an operator, or nil when none were collected.
func (c *Catalog) Get(op string) *OperatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops[op]
}

// put replaces an operator's stats.
func (c *Catalog) put(op string, st *OperatorStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops[op] = st
}

// Operators lists the operators with stats, sorted.
func (c *Catalog) Operators() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.ops))
	for n := range c.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String summarizes the catalog.
func (c *Catalog) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("catalog(%d operators)", len(c.ops))
}

// collectStats folds per-task counter samples into OperatorStats for one
// operator, updating the catalog. It is called after a wave of tasks
// completes (the paper updates the catalog whenever a Map or Reduce task
// finishes; folding a batch at the wave boundary is equivalent for the
// re-optimization decision, which happens at the wave boundary too).
func collectStats(cat *Catalog, op *Operator, tasks []mapreduce.TaskStats, env Env) *OperatorStats {
	st := &OperatorStats{Index: make(map[string]IndexStats)}
	name := op.Name()

	var records, preInBytes, preOutBytes, idxBytes, postBytes, postRecords int64
	var mapBytes int64
	sketches := make(map[string]*sketch.FM)
	type idxTotals struct {
		keys, keyBytes, valBytes, lookups, serveNS, probes, misses, multi int64
	}
	totals := make(map[string]*idxTotals)
	for _, a := range op.Indices() {
		totals[a.Name()] = &idxTotals{}
	}

	// Per-task samples of the per-record sizes, for the variance gate.
	var samples []map[string]float64

	used := 0
	for _, t := range tasks {
		r := t.Counters[ctrPreIn(name)]
		if r == 0 {
			continue // task saw no records for this operator
		}
		used++
		records += r
		preInBytes += t.Counters[ctrPreInBytes(name)]
		preOutBytes += t.Counters[ctrPreOutBytes(name)]
		idxBytes += t.Counters[ctrIdxBytes(name)]
		postBytes += t.Counters[ctrPostBytes(name)]
		postRecords += t.Counters[ctrPostRecords(name)]
		mapBytes += t.Counters[ctrMapOutBytes]

		sample := map[string]float64{
			"s1":    float64(t.Counters[ctrPreInBytes(name)]) / float64(r),
			"spre":  float64(t.Counters[ctrPreOutBytes(name)]) / float64(r),
			"sidx":  float64(t.Counters[ctrIdxBytes(name)]) / float64(r),
			"spost": float64(t.Counters[ctrPostBytes(name)]) / float64(r),
		}
		for _, a := range op.Indices() {
			ix := a.Name()
			tt := totals[ix]
			tt.keys += t.Counters[ctrKeys(name, ix)]
			tt.keyBytes += t.Counters[ctrKeyBytes(name, ix)]
			tt.valBytes += t.Counters[ctrValBytes(name, ix)]
			tt.lookups += t.Counters[ctrLookups(name, ix)]
			tt.serveNS += t.Counters[ctrServeNS(name, ix)]
			tt.probes += t.Counters[ctrProbes(name, ix)]
			tt.misses += t.Counters[ctrMisses(name, ix)]
			tt.multi += t.Counters[ctrMulti(name, ix)]
			sample["nik."+ix] = float64(t.Counters[ctrKeys(name, ix)]) / float64(r)
			if vecs, ok := t.Sketches[skKeys(name, ix)]; ok {
				fm := sketch.FromVectors(vecs)
				if cur, ok := sketches[ix]; ok {
					cur.Merge(fm)
				} else {
					sketches[ix] = fm
				}
			}
		}
		samples = append(samples, sample)
	}
	if records == 0 {
		return nil
	}

	st.Tasks = used
	st.Records = records
	st.N1 = float64(records) / float64(env.Nodes)
	st.S1 = float64(preInBytes) / float64(records)
	st.Spre = float64(preOutBytes) / float64(records)
	st.Sidx = float64(idxBytes) / float64(records)
	st.Spost = float64(postBytes) / float64(records)
	st.PostRecords = postRecords
	st.Smap = float64(mapBytes) / float64(records)

	for _, a := range op.Indices() {
		ix := a.Name()
		tt := totals[ix]
		is := IndexStats{Lookups: tt.lookups, MultiKey: tt.multi > 0}
		if tt.keys > 0 {
			is.Nik = float64(tt.keys) / float64(records)
			is.Sik = float64(tt.keyBytes) / float64(tt.keys)
			is.Siv = float64(tt.valBytes) / float64(tt.keys)
		}
		if tt.lookups > 0 {
			is.Tj = float64(tt.serveNS) / 1e9 / float64(tt.lookups)
		}
		if tt.probes > 0 {
			is.R = float64(tt.misses) / float64(tt.probes)
		} else {
			is.R = 1 // pessimistic prior: never probed
		}
		is.Theta = 1
		if fm, ok := sketches[ix]; ok {
			if d := fm.Estimate(); d >= 1 {
				is.Theta = float64(tt.keys) / d
				if is.Theta < 1 {
					is.Theta = 1
				}
			}
		}
		st.Index[ix] = is
	}

	st.MaxRelStdDev = maxRelStdDev(samples)
	cat.put(name, st)
	return st
}

// maxRelStdDev computes the largest stddev/mean over the per-task samples
// of each statistic (equation (5) of the paper). Statistics with zero mean
// are skipped (they carry no signal for the cost model).
func maxRelStdDev(samples []map[string]float64) float64 {
	if len(samples) < 2 {
		// A single sample gives no variance information; report a large
		// value so Algorithm 1 waits for more tasks.
		return math.Inf(1)
	}
	keys := make([]string, 0, len(samples[0]))
	for k := range samples[0] {
		keys = append(keys, k)
	}
	worst := 0.0
	for _, k := range keys {
		var sum, sumSq float64
		for _, s := range samples {
			v := s[k]
			sum += v
			sumSq += v * v
		}
		n := float64(len(samples))
		mean := sum / n
		if mean == 0 {
			continue
		}
		variance := (sumSq - n*mean*mean) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		rel := math.Sqrt(variance) / math.Abs(mean)
		if rel > worst {
			worst = rel
		}
	}
	return worst
}
