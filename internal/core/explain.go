package core

import (
	"fmt"

	"efind/internal/ixclient"
	"efind/internal/obs"
)

// ExplainCosts renders a human-readable breakdown of the four strategies'
// modeled costs for one index at one operator, used by cmd/efind-plan.
func ExplainCosts(st *OperatorStats, is IndexStats, env Env, pos OpPosition) []string {
	var out []string
	unit := lookupUnit(is, env)
	out = append(out, fmt.Sprintf("lookup unit (Sik+Siv)/BW + Tj           = %.6f s", unit))

	base := costBaseline(st, is, env)
	out = append(out, fmt.Sprintf("baseline   N1·Nik·unit                  = %.4f s", base))

	cache := costCache(st, is, env)
	out = append(out, fmt.Sprintf("cache      N1·Nik·(Tcache + R·unit)     = %.4f s  (R=%.2f)", cache, is.R))

	spreEff := st.Spre
	sidxEff := spreEff + is.Nik*(is.Sik+is.Siv)
	sizes := boundarySizes(pos, st, spreEff, sidxEff)
	for _, b := range []Boundary{BoundaryPre, BoundaryIdx, BoundaryLate} {
		shuffle, result, lookup := repartParts(st, is, env, spreEff, sizes[b])
		if b != BoundaryPre {
			lookup *= env.laneFactor()
		}
		total := shuffle + result + lookup + env.JobOverhead
		out = append(out, fmt.Sprintf(
			"repart/%-4s shuffle=%.4f + result=%.4f + lookup=%.4f + job=%.4f = %.4f s (S_min=%.0fB)",
			b, shuffle, result, lookup, env.JobOverhead, total, sizes[b]))
	}

	idxloc := costIdxLoc(st, is, env, spreEff)
	out = append(out, fmt.Sprintf("idxloc     (local lookups + input move)  = %.4f s", idxloc))
	return out
}

// ExplainBuild renders the fifth strategy's cost breakdown for a
// buildable index: the registry's completeness, the blended serve time
// at current coverage, the BuildCost term, the amortized rank the
// planner actually compares, and the predicted break-even run count
// against the best non-build alternative. is.Tj must already be the
// modeled TjAt(covered) (see effectiveIndexStats).
func ExplainBuild(st *OperatorStats, is IndexStats, env Env, m BuildModel, horizon float64, alt float64) []string {
	var out []string
	out = append(out, fmt.Sprintf("build      registry %d/%d splits covered (%.0f%% complete), Tj(c)=%.6f s",
		m.Covered, m.Total, 100*m.Completeness(), m.TjAt(m.Covered)))
	cache := costCache(st, is, env)
	total := costBuild(st, is, env, m)
	out = append(out, fmt.Sprintf("build      lookups=%.4f + BuildCost N1·(offer/total)·Tbuild=%.4f = %.4f s  (offer=%d)",
		cache, total-cache, total, m.Offer))
	savings := buildSavings(st, is, env, m)
	out = append(out, fmt.Sprintf("build      rank = cost − horizon·savings = %.4f − %.0f·%.4f = %.4f s",
		total, horizon, savings, total-horizon*savings))
	if n := PredictBuildRuns(st, is, env, m, alt, 1000); n >= 0 {
		out = append(out, fmt.Sprintf("build      predicted break-even: run %d (vs best alternative %.4f s/run)", n, alt))
	} else {
		out = append(out, fmt.Sprintf("build      no break-even within 1000 runs (vs best alternative %.4f s/run)", alt))
	}
	return out
}

// IndexProfiles derives the per-index modeled-vs-observed rows of a
// finished job: each plan decision's modeled per-machine cost next to
// the serve time the run actually charged, plus the index client
// pipeline's observed counters. Rows follow the plan's data-flow order;
// the trace sorts them by key on export.
func IndexProfiles(res *JobResult) []obs.IndexProfile {
	if res == nil || res.Plan == nil {
		return nil
	}
	var out []obs.IndexProfile
	for _, p := range res.Plan.All() {
		for _, d := range p.Decisions {
			op, ix := p.Op.Name(), p.Op.Indices()[d.Index].Name()
			out = append(out, obs.IndexProfile{
				Key:           op + "/" + ix,
				Strategy:      d.Strategy.String(),
				ModeledCost:   d.Cost,
				ObservedServe: float64(res.Counters[ixclient.CtrServeNS(op, ix)]) / 1e9,
				Lookups:       res.Counters[ixclient.CtrLookups(op, ix)],
				CacheProbes:   res.Counters[ixclient.CtrProbes(op, ix)],
				CacheMisses:   res.Counters[ixclient.CtrMisses(op, ix)],
				Errors:        res.Counters[ixclient.CtrErrors(op, ix)],
				Retries:       res.Counters[ixclient.CtrRetries(op, ix)],
				Timeouts:      res.Counters[ixclient.CtrTimeouts(op, ix)],
				NetRoundTrips: res.Counters[ixclient.CtrNetRoundTrips(op, ix)],
			})
		}
	}
	return out
}

// RenderProfile renders a job profile as human-readable report lines.
// Every section iterates in the profile's sorted order, so the report is
// byte-stable across runs.
func RenderProfile(p *obs.Profile) []string {
	out := []string{fmt.Sprintf("profile %q: total virtual time %.4f s", p.Label, p.TotalVTime)}
	if len(p.Stages) > 0 {
		out = append(out, "stages:")
		for _, s := range p.Stages {
			out = append(out, fmt.Sprintf("  %-44s %-7s vtime=%.4fs tasks=%d local=%d waves=%d",
				s.Name, s.Kind, s.VTime, s.Tasks, s.LocalTasks, s.Waves))
		}
	}
	if len(p.Indexes) > 0 {
		out = append(out, "indexes (modeled vs observed):")
		for _, ix := range p.Indexes {
			out = append(out, fmt.Sprintf("  %-34s %-9s modeled=%.4fs served=%.4fs lookups=%d misses=%d/%d errors=%d retries=%d timeouts=%d rtts=%d",
				ix.Key, ix.Strategy, ix.ModeledCost, ix.ObservedServe, ix.Lookups,
				ix.CacheMisses, ix.CacheProbes, ix.Errors, ix.Retries, ix.Timeouts, ix.NetRoundTrips))
		}
	}
	if len(p.Counters) > 0 {
		out = append(out, "counters:")
		for _, c := range p.Counters {
			out = append(out, fmt.Sprintf("  %-56s %d", c.Name, c.Value))
		}
	}
	if len(p.Gauges) > 0 {
		out = append(out, "gauges:")
		for _, g := range p.Gauges {
			out = append(out, fmt.Sprintf("  %-56s %.6g", g.Name, g.Value))
		}
	}
	return out
}
