package core

import "fmt"

// ExplainCosts renders a human-readable breakdown of the four strategies'
// modeled costs for one index at one operator, used by cmd/efind-plan.
func ExplainCosts(st *OperatorStats, is IndexStats, env Env, pos OpPosition) []string {
	var out []string
	unit := lookupUnit(is, env)
	out = append(out, fmt.Sprintf("lookup unit (Sik+Siv)/BW + Tj           = %.6f s", unit))

	base := costBaseline(st, is, env)
	out = append(out, fmt.Sprintf("baseline   N1·Nik·unit                  = %.4f s", base))

	cache := costCache(st, is, env)
	out = append(out, fmt.Sprintf("cache      N1·Nik·(Tcache + R·unit)     = %.4f s  (R=%.2f)", cache, is.R))

	spreEff := st.Spre
	sidxEff := spreEff + is.Nik*(is.Sik+is.Siv)
	sizes := boundarySizes(pos, st, spreEff, sidxEff)
	for _, b := range []Boundary{BoundaryPre, BoundaryIdx, BoundaryLate} {
		shuffle, result, lookup := repartParts(st, is, env, spreEff, sizes[b])
		if b != BoundaryPre {
			lookup *= env.laneFactor()
		}
		total := shuffle + result + lookup + env.JobOverhead
		out = append(out, fmt.Sprintf(
			"repart/%-4s shuffle=%.4f + result=%.4f + lookup=%.4f + job=%.4f = %.4f s (S_min=%.0fB)",
			b, shuffle, result, lookup, env.JobOverhead, total, sizes[b]))
	}

	idxloc := costIdxLoc(st, is, env, spreEff)
	out = append(out, fmt.Sprintf("idxloc     (local lookups + input move)  = %.4f s", idxloc))
	return out
}
