// Package core implements EFind: an efficient and flexible index access
// layer for MapReduce (Ma, Cao, Feng, Chen, Wang — EDBT 2014). It provides
//
//   - the index access interface: IndexOperator (preProcess/postProcess)
//     over one or more index.Accessors, placeable before Map, between Map
//     and Reduce, and after Reduce (IndexJobConf);
//   - the four index access strategies of §3 — baseline, lookup cache,
//     re-partitioning, index locality — with the paper's cost model;
//   - plan enumeration for multiple indices per operator (FullEnumerate
//     and k-Repart, §3.5, Properties 1–4);
//   - the adaptive runtime of §4: on-the-fly statistics via counters and
//     Flajolet–Martin sketches, a variance gate, dynamic re-optimization
//     (Algorithm 1), and mid-job plan changes that reuse completed tasks
//     (Figure 10).
//
// EFind implements no index itself; indices are black boxes behind
// index.Accessor.
package core

import (
	"fmt"

	"efind/internal/index"
	"efind/internal/mapreduce"
)

// Pair aliases the MapReduce record type for API convenience.
type Pair = mapreduce.Pair

// Emit aliases the MapReduce emit type.
type Emit = mapreduce.Emit

// PreResult is what preProcess produces from an input (k1, v1): the
// possibly modified pair plus one key list per index of the operator
// (the paper's (k1', v1', {{ik_1}, ..., {ik_m}})).
type PreResult struct {
	Pair Pair
	// Keys[j] holds the lookup keys for the operator's j-th index (in
	// AddIndex order). A nil or empty list skips that index for this
	// record.
	Keys [][]string
}

// KeyResult is one index lookup outcome: the key and its value list {iv}.
type KeyResult struct {
	Key    string
	Values []string
}

// PreFunc is the user preProcess method.
type PreFunc func(in Pair) PreResult

// PostFunc is the user postProcess method: it combines the (possibly
// modified) pair with the per-index lookup results into output pairs
// (k2, v2), optionally filtering (emit zero times) or fanning out.
// results[j][i] corresponds to Keys[j][i] from preProcess.
type PostFunc func(pair Pair, results [][]KeyResult, emit Emit)

// Operator is the paper's IndexOperator: invocation-specific pre/post
// logic around one or more reusable IndexAccessors, placed at a single
// point of a MapReduce data flow.
type Operator struct {
	name      string
	accessors []index.Accessor
	pre       PreFunc
	post      PostFunc
}

// NewOperator builds an operator. A nil pre defaults to "look up the
// record key in every index, pair unchanged"; a nil post defaults to
// appending all lookup values to the record value, tab-separated.
func NewOperator(name string, pre PreFunc, post PostFunc) *Operator {
	return &Operator{name: name, pre: pre, post: post}
}

// AddIndex attaches an accessor; the paper's addIndex. Indices added to
// the same operator must be independent (their keys must not depend on
// each other's results); dependent accesses belong in chained operators.
func (o *Operator) AddIndex(a index.Accessor) *Operator {
	o.accessors = append(o.accessors, a)
	return o
}

// Name returns the operator's label.
func (o *Operator) Name() string { return o.name }

// Indices returns the attached accessors in AddIndex order.
func (o *Operator) Indices() []index.Accessor { return o.accessors }

// NumIndices returns m, the number of indices at this operator.
func (o *Operator) NumIndices() int { return len(o.accessors) }

// runPre applies the user preProcess (or the default) and normalizes the
// key-list shape to exactly one list per index.
func (o *Operator) runPre(in Pair) PreResult {
	var r PreResult
	if o.pre != nil {
		r = o.pre(in)
	} else {
		keys := make([][]string, len(o.accessors))
		for j := range keys {
			keys[j] = []string{in.Key}
		}
		r = PreResult{Pair: in, Keys: keys}
	}
	if len(r.Keys) < len(o.accessors) {
		padded := make([][]string, len(o.accessors))
		copy(padded, r.Keys)
		r.Keys = padded
	}
	return r
}

// runPost applies the user postProcess (or the default).
func (o *Operator) runPost(pair Pair, results [][]KeyResult, emit Emit) {
	if o.post != nil {
		o.post(pair, results, emit)
		return
	}
	v := pair.Value
	for _, rs := range results {
		for _, kr := range rs {
			for _, iv := range kr.Values {
				v += "\t" + iv
			}
		}
	}
	emit(Pair{Key: pair.Key, Value: v})
}

// validate rejects operators that cannot run.
func (o *Operator) validate() error {
	if len(o.accessors) == 0 {
		return fmt.Errorf("efind: operator %q has no indices", o.name)
	}
	seen := map[string]bool{}
	for _, a := range o.accessors {
		if seen[a.Name()] {
			return fmt.Errorf("efind: operator %q attaches index %q twice", o.name, a.Name())
		}
		seen[a.Name()] = true
	}
	return nil
}
