package core

import (
	"strings"
	"testing"
	"testing/quick"

	"efind/internal/mapreduce"
	"efind/internal/sim"
)

func TestCarrierRoundTrip(t *testing.T) {
	c := &carrier{
		Pair: Pair{Key: "k1", Value: "v1\twith\ttabs and 4:colons;semis"},
		Keys: [][]string{{"ika", "ikb"}, nil, {"single"}},
		Results: [][]KeyResult{
			{{Key: "ika", Values: []string{"r1", "r2"}}, {Key: "ikb", Values: nil}},
			nil,
			{{Key: "single", Values: []string{""}}},
		},
	}
	got, err := decodeCarrier(encodeCarrier(c))
	if err != nil {
		t.Fatal(err)
	}
	if got.Pair != c.Pair {
		t.Fatalf("pair = %+v, want %+v", got.Pair, c.Pair)
	}
	if len(got.Keys) != 3 || len(got.Keys[0]) != 2 || got.Keys[0][1] != "ikb" {
		t.Fatalf("keys = %+v", got.Keys)
	}
	if len(got.Results) != 3 || got.Results[0][0].Values[1] != "r2" {
		t.Fatalf("results = %+v", got.Results)
	}
	if len(got.Results[2][0].Values) != 1 || got.Results[2][0].Values[0] != "" {
		t.Fatalf("empty string value lost: %+v", got.Results[2])
	}
}

func TestCarrierRoundTripProperty(t *testing.T) {
	f := func(k, v string, keys []string, rk string, rvs []string) bool {
		if len(k) > 200 || len(v) > 200 || len(keys) > 20 || len(rvs) > 20 {
			return true
		}
		c := &carrier{
			Pair:    Pair{Key: k, Value: v},
			Keys:    [][]string{keys},
			Results: [][]KeyResult{{{Key: rk, Values: rvs}}},
		}
		got, err := decodeCarrier(encodeCarrier(c))
		if err != nil {
			return false
		}
		if got.Pair != c.Pair || len(got.Keys) != 1 || len(got.Keys[0]) != len(keys) {
			return false
		}
		for i := range keys {
			if got.Keys[0][i] != keys[i] {
				return false
			}
		}
		r := got.Results[0][0]
		if r.Key != rk || len(r.Values) != len(rvs) {
			return false
		}
		for i := range rvs {
			if r.Values[i] != rvs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCarrierSizeMatchesIntuition(t *testing.T) {
	c := &carrier{Pair: Pair{Key: "abc", Value: "defg"}}
	if got := c.size(); got < 7 {
		t.Fatalf("size %d too small for 7 payload bytes", got)
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	bad := []string{
		"",
		"3:ab",             // truncated string
		"notanumber:x",     // bad length
		"1:a1:b0;0;excess", // trailing bytes
		"-1:x",             // negative length
	}
	for _, s := range bad {
		if _, err := decodeCarrier(s); err == nil {
			t.Fatalf("decodeCarrier(%q) should fail", s)
		}
	}
}

func TestDecodeDoesNotPanicOnArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 500 {
			return true
		}
		decodeCarrier(s) // must not panic; error is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeyPassThrough(t *testing.T) {
	c := &carrier{Pair: Pair{Key: "rec7", Value: "v"}, Keys: [][]string{nil}}
	k, has := shuffleKeyFor(c, 0)
	if has {
		t.Fatal("record without keys should produce a pass key")
	}
	if !isPassKey(k) {
		t.Fatalf("pass key %q not recognized", k)
	}
	if !strings.Contains(k, "rec7") {
		t.Fatalf("pass key %q should derive from the record key for spread", k)
	}
	c.Keys = [][]string{{"real"}}
	k, has = shuffleKeyFor(c, 0)
	if !has || k != "real" || isPassKey(k) {
		t.Fatalf("real key mishandled: %q %v", k, has)
	}
}

func TestOperatorDefaults(t *testing.T) {
	op := NewOperator("dflt", nil, nil)
	pr := op.runPre(Pair{Key: "k", Value: "v"})
	if pr.Pair.Key != "k" || pr.Pair.Value != "v" {
		t.Fatalf("default pre should not modify pair: %+v", pr.Pair)
	}
	if len(pr.Keys) != 0 {
		// No indices added yet: normalized to zero lists.
		t.Fatalf("keys = %+v", pr.Keys)
	}

	var out []Pair
	op.runPost(Pair{Key: "k", Value: "v"}, [][]KeyResult{{{Key: "ik", Values: []string{"a", "b"}}}}, func(p Pair) { out = append(out, p) })
	if len(out) != 1 || out[0].Value != "v\ta\tb" {
		t.Fatalf("default post output = %+v", out)
	}
}

func TestOperatorValidate(t *testing.T) {
	op := NewOperator("x", nil, nil)
	if err := op.validate(); err == nil {
		t.Fatal("operator without indices must not validate")
	}
	a := fakeAccessor{name: "ix"}
	op.AddIndex(a).AddIndex(a)
	if err := op.validate(); err == nil {
		t.Fatal("duplicate index names must not validate")
	}
}

func TestOperatorPreNormalizesKeyLists(t *testing.T) {
	op := NewOperator("n", func(in Pair) PreResult {
		return PreResult{Pair: in, Keys: [][]string{{"only-first"}}}
	}, nil)
	op.AddIndex(fakeAccessor{name: "a"})
	op.AddIndex(fakeAccessor{name: "b"})
	pr := op.runPre(Pair{Key: "k"})
	if len(pr.Keys) != 2 {
		t.Fatalf("pre keys should be padded to index count, got %d", len(pr.Keys))
	}
}

// fakeAccessor is a trivial index for interface-level tests.
type fakeAccessor struct{ name string }

func (f fakeAccessor) Name() string                      { return f.name }
func (f fakeAccessor) Lookup(k string) ([]string, error) { return []string{"v:" + k}, nil }
func (f fakeAccessor) ServeTime() float64                { return 0.001 }
func (f fakeAccessor) HostsFor(string) []sim.NodeID      { return nil }

var _ = mapreduce.Pair{}
