package core

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"efind/internal/chaos"
	"efind/internal/obs"
)

// chaosConf builds the standard tail-operator job the outage tests run:
// lookups happen in the reduce phase, so the map phase advances the
// virtual clock before the first index access — an outage window can end
// between a failed attempt and its re-run.
func chaosConf(e *e2eEnv, name string, plan *chaos.Plan) *IndexJobConf {
	op := e.lookupOp(name + "-op")
	conf := e.conf(name, ModeCache, op, tailPlace)
	conf.ErrorPolicy = ErrorFailJob
	conf.Retry = RetryPolicy{Max: 2, Backoff: 0.001, Factor: 2}
	conf.Chaos = plan
	return conf
}

// TestChaosOutageDegradesToBaseline: a whole-index outage that outlasts
// the retry ladder fails the first attempt; the runtime demotes the
// operator to the baseline strategy and re-runs, and the later virtual
// start time carries the job past the outage window. The output must be
// identical to a fault-free run and the forced plan change counted.
func TestChaosOutageDegradesToBaseline(t *testing.T) {
	clean := func() *JobResult {
		e := newE2E(t, 800, 25)
		res, err := e.rt.Submit(chaosConf(e, "outage-clean", nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	// Phase makespans of the fault-free run size the outage window: the
	// first reduce attempt starts at mapSpan and its retry ladder reaches
	// ≈ 0.003 virtual seconds further, so 2×mapSpan outlasts it; the
	// degraded re-run's reduce phase starts past 2×mapSpan (failed reduce
	// + fresh map phase), safely beyond the window.
	mapSpan := clean.raw[0].MapPhase.Makespan
	until := 2 * mapSpan

	e := newE2E(t, 800, 25)
	e.rt.Engine.Trace = obs.NewTrace()
	plan := chaos.MustNew(chaos.Config{
		Outages: []chaos.Outage{{Index: "kv", Partition: -1, From: 0, Until: until}},
	}, 6)
	res, err := e.rt.Submit(chaosConf(e, "outage-degrade", plan))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counters[chaos.CtrReoptFailure]; got != 1 {
		t.Fatalf("failure-triggered re-optimizations = %d, want 1", got)
	}
	if got := e.rt.Engine.Trace.Metrics.Counter(chaos.CtrReoptFailure); got != 1 {
		t.Fatalf("trace metrics re-optimizations = %d, want 1", got)
	}
	sameOutput(t, "outage-degrade", sortedOutput(clean.Output), sortedOutput(res.Output))

	var buf bytes.Buffer
	if err := e.rt.Engine.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "reopt:failure") {
		t.Fatal("trace has no failure-triggered re-optimization instant")
	}
}

// TestChaosPermanentOutageExhaustsLadder: when the outage never ends,
// the degraded baseline re-run fails on the same index; the (operator,
// index) pair is already demoted, so the ladder is exhausted and the job
// fails with the unavailability error.
func TestChaosPermanentOutageExhaustsLadder(t *testing.T) {
	plan := chaos.MustNew(chaos.Config{
		Outages: []chaos.Outage{{Index: "kv", Partition: -1, From: 0, Until: math.Inf(1)}},
	}, 6)

	e := newE2E(t, 400, 10)
	_, err := e.rt.Submit(chaosConf(e, "outage-perm", plan))
	if err == nil {
		t.Fatal("permanent outage must fail the job once every fallback is exhausted")
	}
	if !errors.Is(err, chaos.ErrUnavailable) {
		t.Fatalf("job failure should carry the unavailability cause, got %v", err)
	}

	// With degradation disabled the very first exhausted ladder is fatal.
	e2 := newE2E(t, 400, 10)
	conf := chaosConf(e2, "outage-nodegrade", plan)
	conf.DisableDegrade = true
	_, err = e2.rt.Submit(conf)
	if err == nil || !errors.Is(err, chaos.ErrUnavailable) {
		t.Fatalf("DisableDegrade should surface the unavailability error, got %v", err)
	}
}

// TestChaosPartitionScopedOutageOnlyHitsItsKeys: an outage of one
// partition leaves lookups routed to other partitions untouched — the
// unavailability counter stays scoped to the keys the outage covers.
func TestChaosPartitionScopedOutageOnlyHitsItsKeys(t *testing.T) {
	clean := func() *JobResult {
		e := newE2E(t, 800, 25)
		res, err := e.rt.Submit(chaosConf(e, "part-clean", nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	mapSpan := clean.raw[0].MapPhase.Makespan

	e := newE2E(t, 800, 25)
	plan := chaos.MustNew(chaos.Config{
		Outages: []chaos.Outage{{Index: "kv", Partition: 3, From: 0, Until: 2 * mapSpan}},
	}, 6)
	res, err := e.rt.Submit(chaosConf(e, "part-degrade", plan))
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "partition-scoped", sortedOutput(clean.Output), sortedOutput(res.Output))
}

// TestChaosAcceptanceCombo is the issue's acceptance run: one seeded
// schedule that crashes a node mid-wave, speculates at least one
// straggler, and takes the index down long enough to force a
// failure-triggered re-optimization — and still finishes with output
// bit-identical to the fault-free run, with every event in the trace.
func TestChaosAcceptanceCombo(t *testing.T) {
	// Seed 8 slows exactly one task of the final reduce phase (sequence
	// 4: map, failed reduce, re-run map, re-run reduce, with the crash
	// recovery wave claiming one sequence number in between), so the
	// speculation threshold — 2× the phase median — is provably crossed.
	base := chaos.Config{
		Seed:            8,
		Spec:            chaos.Speculation{Enabled: true},
		StragglerRate:   0.3,
		StragglerFactor: 5,
	}

	clean := func() *JobResult {
		e := newE2E(t, 800, 25)
		res, err := e.rt.Submit(chaosConf(e, "combo-clean", nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}()
	cleanMap := clean.raw[0].MapPhase.Makespan

	// Two calibration runs size the fault schedule. The first (stragglers
	// and speculation, nothing else) learns the stretched map makespan so
	// the crash lands mid-wave; the second adds that crash and learns the
	// final map makespan — the real run's map phase is identical, so the
	// outage window can be cut to cover exactly the first reduce attempt
	// plus its retry ladder and end before the degraded re-run's reduce
	// phase (which starts a failed reduce and a full map phase later).
	calibrate := func(name string, cfg chaos.Config) float64 {
		e := newE2E(t, 800, 25)
		res, err := e.rt.Submit(chaosConf(e, name, chaos.MustNew(cfg, 6)))
		if err != nil {
			t.Fatal(err)
		}
		return res.raw[0].MapPhase.Makespan
	}
	calMap := calibrate("combo-cal1", base)
	crashed := base
	crashed.Crashes = []chaos.Crash{{Node: 2, At: 0.5 * calMap, Recover: 0.5*calMap + 1000}}
	crashMap := calibrate("combo-cal2", crashed)

	cfg := crashed
	cfg.Outages = []chaos.Outage{{Index: "kv", Partition: -1, From: 0, Until: crashMap + cleanMap}}

	e := newE2E(t, 800, 25)
	e.rt.Engine.Trace = obs.NewTrace()
	res, err := e.rt.Submit(chaosConf(e, "combo", chaos.MustNew(cfg, 6)))
	if err != nil {
		t.Fatal(err)
	}

	sameOutput(t, "acceptance-combo", sortedOutput(clean.Output), sortedOutput(res.Output))
	if got := res.Counters[chaos.CtrReoptFailure]; got != 1 {
		t.Fatalf("failure-triggered re-optimizations = %d, want 1", got)
	}
	m := e.rt.Engine.Trace.Metrics
	if m.Counter(chaos.CtrNodeCrashes) == 0 {
		t.Fatal("combo run applied no node crash")
	}
	if m.Counter(chaos.CtrSpecLaunched) == 0 {
		t.Fatal("combo run speculated no straggler")
	}

	var buf bytes.Buffer
	if err := e.rt.Engine.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	for _, want := range []string{"crash:node", "speculate:", "reopt:failure"} {
		if !strings.Contains(trace, want) {
			t.Fatalf("trace is missing %q events", want)
		}
	}
}

// TestChaosDeterministicAcrossRuns re-executes the acceptance schedule
// and demands identical counters and output both times — chaos runs are
// as reproducible as fault-free ones.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	run := func() *JobResult {
		e := newE2E(t, 800, 25)
		plan := chaos.MustNew(chaos.Config{
			Seed:            11,
			Spec:            chaos.Speculation{Enabled: true},
			StragglerRate:   0.3,
			StragglerFactor: 5,
		}, 6)
		res, err := e.rt.Submit(chaosConf(e, "repro", plan))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.VTime != b.VTime {
		t.Fatalf("chaos re-run changed the makespan: %g vs %g", a.VTime, b.VTime)
	}
	for k, v := range a.Counters {
		if b.Counters[k] != v {
			t.Fatalf("chaos re-run changed counter %q: %d vs %d", k, v, b.Counters[k])
		}
	}
	sameOutput(t, "chaos-repro", sortedOutput(a.Output), sortedOutput(b.Output))

	// The injected stragglers must really be there, or the test is
	// checking nothing.
	e := newE2E(t, 800, 25)
	clean, err := e.rt.Submit(chaosConf(e, "repro-clean", nil))
	if err != nil {
		t.Fatal(err)
	}
	if a.VTime <= clean.VTime {
		t.Fatal("straggler injection did not stretch the makespan")
	}
}
