package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randStats builds random-but-plausible operator statistics for m indices.
func randStats(rng *rand.Rand, m int) (*Operator, *OperatorStats) {
	op := NewOperator("prop", nil, nil)
	st := &OperatorStats{
		N1:      float64(1 + rng.Intn(1_000_000)),
		Records: 1,
		S1:      10 + rng.Float64()*1000,
		Spre:    10 + rng.Float64()*1000,
		Spost:   10 + rng.Float64()*1000,
		Smap:    10 + rng.Float64()*1000,
		Index:   map[string]IndexStats{},
	}
	st.Sidx = st.Spre
	for i := 0; i < m; i++ {
		name := fmt.Sprintf("ix%d", i)
		is := IndexStats{
			Nik:      rng.Float64() * 2,
			Sik:      1 + rng.Float64()*100,
			Siv:      1 + rng.Float64()*30000,
			Tj:       rng.Float64() * 0.005,
			Theta:    1 + rng.Float64()*100,
			R:        rng.Float64(),
			MultiKey: rng.Intn(4) == 0,
		}
		st.Index[name] = is
		st.Sidx += is.Nik * (is.Sik + is.Siv)
		if rng.Intn(2) == 0 {
			op.AddIndex(planIdx{fakeAccessor{name: name}, schemeOf(16)})
		} else {
			op.AddIndex(fakeAccessor{name: name})
		}
	}
	return op, st
}

// TestOptimizerProperties checks, over random statistics:
//  1. the plan covers every index exactly once;
//  2. Property 4 holds (shuffle strategies form a prefix);
//  3. shuffle strategies are only assigned to feasible indices;
//  4. PlanCost re-evaluation agrees with the optimizer's cost;
//  5. the plan never costs more than the all-baseline plan.
func TestOptimizerProperties(t *testing.T) {
	env := testEnv12()
	env.JobOverhead = 0.05
	env.LaneFactor = 2
	f := func(seed int64, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(mRaw%4) + 1
		op, st := randStats(rng, m)
		p := OptimizeOperator(op, OpPosition(rng.Intn(3)), st, env, DefaultPlannerOptions())

		if len(p.Decisions) != m {
			return false
		}
		seen := map[int]bool{}
		sawInline := false
		for _, d := range p.Decisions {
			if d.Index < 0 || d.Index >= m || seen[d.Index] {
				return false
			}
			seen[d.Index] = true
			is := st.Index[op.Indices()[d.Index].Name()]
			switch d.Strategy {
			case Repartition, IndexLocality:
				if sawInline {
					return false // Property 4 violated
				}
				if !repartFeasible(is) {
					return false
				}
				if d.Strategy == IndexLocality && !idxLocFeasible(op.Indices()[d.Index], is) {
					return false
				}
			default:
				sawInline = true
			}
		}

		if math.Abs(PlanCost(p, st, env)-p.Cost) > 1e-6*(1+p.Cost) {
			return false
		}

		basePlan := baselinePlan(op, p.Pos)
		baseCost := PlanCost(basePlan, st, env)
		return p.Cost <= baseCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimizerDeterministic: same inputs, same plan.
func TestOptimizerDeterministic(t *testing.T) {
	env := testEnv12()
	rng := rand.New(rand.NewSource(99))
	op, st := randStats(rng, 3)
	a := OptimizeOperator(op, BodyOp, st, env, DefaultPlannerOptions())
	b := OptimizeOperator(op, BodyOp, st, env, DefaultPlannerOptions())
	if a.String() != b.String() || a.Cost != b.Cost {
		t.Fatalf("nondeterministic plans: %v vs %v", a, b)
	}
}

// TestKRepartNeverBeatsFullEnumerate over random stats (it searches a
// subset of the order space).
func TestKRepartNeverBeatsFullEnumerate(t *testing.T) {
	env := testEnv12()
	env.JobOverhead = 0.05
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		op, st := randStats(rng, 4)
		full := OptimizeOperator(op, BodyOp, st, env, PlannerOptions{FullEnumerateLimit: 4, KRepart: 2})
		k1 := OptimizeOperator(op, BodyOp, st, env, PlannerOptions{FullEnumerateLimit: 1, KRepart: 1})
		if full.Cost > k1.Cost+1e-9 {
			t.Fatalf("seed %d: FullEnumerate (%g) worse than 1-Repart (%g)", seed, full.Cost, k1.Cost)
		}
	}
}
