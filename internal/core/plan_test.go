package core

import (
	"math"
	"testing"

	"efind/internal/index"
	"efind/internal/sim"
)

// testEnv12 mirrors the paper's environment: 12 nodes, 1 Gbps.
func testEnv12() Env {
	return Env{BW: 125e6, F: 2.5e-8, Tcache: 1e-6, Nodes: 12}
}

func opStats(n1 float64, is IndexStats, names ...string) *OperatorStats {
	st := &OperatorStats{
		N1: n1, Records: int64(n1 * 12),
		S1: 100, Spre: 60, Sidx: 200, Spost: 80, Smap: 90,
		Index: map[string]IndexStats{},
	}
	if len(names) == 0 {
		names = []string{"ix"}
	}
	for _, n := range names {
		st.Index[n] = is
	}
	return st
}

func TestCostBaselineFormula(t *testing.T) {
	env := testEnv12()
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 1, R: 1}
	st := opStats(1000, is)
	want := 1000.0 * 1.0 * ((20.0+100.0)/125e6 + 0.0008)
	if got := costBaseline(st, is, env); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost base = %g, want %g", got, want)
	}
}

func TestCostCacheFormula(t *testing.T) {
	env := testEnv12()
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 1, R: 0.25}
	st := opStats(1000, is)
	unit := (20.0+100.0)/125e6 + 0.0008
	want := 1000.0 * (1e-6 + 0.25*unit)
	if got := costCache(st, is, env); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost cache = %g, want %g", got, want)
	}
}

func TestCostRepartFormula(t *testing.T) {
	env := testEnv12()
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 10, R: 1}
	st := opStats(1000, is)
	shuffle, result, lookup := repartParts(st, is, env, 60, 60)
	if math.Abs(shuffle-1000*60/125e6) > 1e-12 {
		t.Fatalf("shuffle = %g", shuffle)
	}
	if math.Abs(result-2.5e-8*1000*60) > 1e-12 {
		t.Fatalf("result = %g", result)
	}
	unit := (20.0+100.0)/125e6 + 0.0008
	if math.Abs(lookup-1000.0/10*unit) > 1e-9 {
		t.Fatalf("lookup = %g", lookup)
	}
}

func TestCacheBeatsBaselineWhenRedundant(t *testing.T) {
	env := testEnv12()
	// High local redundancy → low miss ratio → cache wins.
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 20, R: 0.05}
	st := opStats(1e5, is)
	if costCache(st, is, env) >= costBaseline(st, is, env) {
		t.Fatal("cache should beat baseline with R=0.05")
	}
}

func TestCacheLosesWhenNoRedundancy(t *testing.T) {
	env := testEnv12()
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 1, R: 1}
	st := opStats(1e5, is)
	if costCache(st, is, env) <= costBaseline(st, is, env) {
		t.Fatal("cache should not beat baseline with R=1 (probe overhead)")
	}
}

func TestRepartWinsWithGlobalRedundancy(t *testing.T) {
	env := testEnv12()
	// Many duplicates across machines, bad cache locality.
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 10, R: 0.95}
	st := opStats(1e5, is)
	repart := costRepart(st, is, env, st.Spre, st.Spre)
	if repart >= costCache(st, is, env) || repart >= costBaseline(st, is, env) {
		t.Fatalf("repart (%g) should win with Θ=10, R=0.95 (base %g, cache %g)",
			repart, costBaseline(st, is, env), costCache(st, is, env))
	}
}

func TestIdxLocWinsForLargeResults(t *testing.T) {
	env := testEnv12()
	// 30KB results: remote transfer dominates; local lookups win even
	// though the main data must move.
	is := IndexStats{Nik: 1, Sik: 20, Siv: 30000, Tj: 0.0002, Theta: 2, R: 1}
	st := opStats(1e5, is)
	st.Spre = 60
	repart := costRepart(st, is, env, st.Spre, st.Spre)
	idxloc := costIdxLoc(st, is, env, st.Spre)
	if idxloc >= repart {
		t.Fatalf("idxloc (%g) should beat repart (%g) at 30KB results", idxloc, repart)
	}
	// And the opposite for tiny results.
	is.Siv = 10
	repart = costRepart(st, is, env, st.Spre, st.Spre)
	idxloc = costIdxLoc(st, is, env, st.Spre)
	if idxloc <= repart {
		t.Fatalf("idxloc (%g) should lose to repart (%g) at 10B results", idxloc, repart)
	}
}

func TestBoundaryChoice(t *testing.T) {
	st := &OperatorStats{Spre: 100, Spost: 50, Smap: 500}
	b, size := bestBoundary(boundarySizes(BodyOp, st, 100, 300))
	if b != BoundaryLate || size != 50 {
		t.Fatalf("body op with small Spost should pick late: got %v/%g", b, size)
	}
	b, size = bestBoundary(boundarySizes(HeadOp, st, 100, 300))
	if b != BoundaryPre || size != 100 {
		t.Fatalf("head op with big Smap should pick pre: got %v/%g", b, size)
	}
	b, _ = bestBoundary(boundarySizes(HeadOp, &OperatorStats{Spre: 400, Spost: 600, Smap: 600}, 400, 90))
	if b != BoundaryIdx {
		t.Fatalf("small Sidx should pick idx boundary, got %v", b)
	}
}

func TestPermutationsCount(t *testing.T) {
	if got := len(permutations(1)); got != 1 {
		t.Fatalf("1! = %d", got)
	}
	if got := len(permutations(3)); got != 6 {
		t.Fatalf("3! = %d", got)
	}
	if got := len(permutations(5)); got != 120 {
		t.Fatalf("5! = %d", got)
	}
	seen := map[string]bool{}
	for _, p := range permutations(4) {
		key := ""
		for _, v := range p {
			key += string(rune('0' + v))
		}
		if seen[key] {
			t.Fatalf("duplicate permutation %s", key)
		}
		seen[key] = true
	}
}

func TestKPermutationsCount(t *testing.T) {
	// P(m,k) = m·(m-1)·…·(m-k+1)
	if got := len(kPermutations(6, 2)); got != 30 {
		t.Fatalf("P(6,2) = %d, want 30", got)
	}
	if got := len(kPermutations(6, 1)); got != 6 {
		t.Fatalf("P(6,1) = %d, want 6", got)
	}
	// k >= m falls back to full enumeration.
	if got := len(kPermutations(3, 5)); got != 6 {
		t.Fatalf("kPermutations(3,5) = %d, want 3! = 6", got)
	}
	// Every order is a full order over m indices.
	for _, o := range kPermutations(5, 2) {
		if len(o) != 5 {
			t.Fatalf("k-permutation order %v incomplete", o)
		}
	}
}

// planIdx is a minimal accessor with a partition scheme for planner tests.
type planIdx struct {
	fakeAccessor
	scheme *index.Scheme
}

func (p planIdx) Scheme() *index.Scheme { return p.scheme }

func schemeOf(n int) *index.Scheme {
	hosts := make([][]sim.NodeID, n)
	for i := range hosts {
		hosts[i] = []sim.NodeID{sim.NodeID(i % 12)}
	}
	return &index.Scheme{Partitions: n, Fn: func(string) int { return 0 }, Hosts: hosts}
}

func TestOptimizeOperatorNilStatsBaseline(t *testing.T) {
	op := NewOperator("o", nil, nil).AddIndex(fakeAccessor{name: "ix"})
	p := OptimizeOperator(op, HeadOp, nil, testEnv12(), DefaultPlannerOptions())
	if len(p.Decisions) != 1 || p.Decisions[0].Strategy != Baseline {
		t.Fatalf("no stats should yield baseline, got %v", p)
	}
}

func TestOptimizeOperatorPicksCache(t *testing.T) {
	op := NewOperator("o", nil, nil).AddIndex(fakeAccessor{name: "ix"})
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 1.05, R: 0.05}
	st := opStats(1e5, is)
	p := OptimizeOperator(op, HeadOp, st, testEnv12(), DefaultPlannerOptions())
	if p.Decisions[0].Strategy != LookupCache {
		t.Fatalf("want cache, got %v", p)
	}
}

func TestOptimizeOperatorPicksRepart(t *testing.T) {
	op := NewOperator("o", nil, nil).AddIndex(fakeAccessor{name: "ix"})
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 10, R: 0.95}
	st := opStats(1e5, is)
	p := OptimizeOperator(op, BodyOp, st, testEnv12(), DefaultPlannerOptions())
	if p.Decisions[0].Strategy != Repartition {
		t.Fatalf("want repart, got %v", p)
	}
}

func TestOptimizeOperatorPicksIdxLocForBigResults(t *testing.T) {
	op := NewOperator("o", nil, nil).AddIndex(planIdx{fakeAccessor{name: "ix"}, schemeOf(32)})
	is := IndexStats{Nik: 1, Sik: 20, Siv: 30000, Tj: 0.0002, Theta: 2, R: 1}
	st := opStats(1e5, is)
	st.Sidx = 30060
	p := OptimizeOperator(op, BodyOp, st, testEnv12(), DefaultPlannerOptions())
	if p.Decisions[0].Strategy != IndexLocality {
		t.Fatalf("want idxloc for 30KB results, got %v", p)
	}
}

func TestOptimizeRespectsMultiKeyInfeasibility(t *testing.T) {
	op := NewOperator("o", nil, nil).AddIndex(fakeAccessor{name: "ix"})
	// Stats that would scream repart, except records carry several keys.
	is := IndexStats{Nik: 3, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 10, R: 0.95, MultiKey: true}
	st := opStats(1e5, is)
	p := OptimizeOperator(op, BodyOp, st, testEnv12(), DefaultPlannerOptions())
	s := p.Decisions[0].Strategy
	if s == Repartition || s == IndexLocality {
		t.Fatalf("multi-key index must not use shuffle strategies, got %v", s)
	}
}

func TestProperty4ShufflesFirst(t *testing.T) {
	// Two indices: one repart-worthy, one cache-worthy. The plan must
	// access the repart one first regardless of AddIndex order.
	repartIs := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 10, R: 0.95}
	cacheIs := IndexStats{Nik: 1, Sik: 10, Siv: 50, Tj: 0.0005, Theta: 20, R: 0.02}
	st := &OperatorStats{
		N1: 1e5, Records: 12e5, S1: 100, Spre: 60, Sidx: 200, Spost: 80,
		Index: map[string]IndexStats{"hot": repartIs, "cached": cacheIs},
	}
	op := NewOperator("o", nil, nil).
		AddIndex(fakeAccessor{name: "cached"}).
		AddIndex(fakeAccessor{name: "hot"})
	p := OptimizeOperator(op, BodyOp, st, testEnv12(), DefaultPlannerOptions())
	if len(p.Decisions) != 2 {
		t.Fatalf("decisions = %v", p.Decisions)
	}
	sawInline := false
	for _, d := range p.Decisions {
		isShuffle := d.Strategy == Repartition || d.Strategy == IndexLocality
		if isShuffle && sawInline {
			t.Fatalf("Property 4 violated: %v", p)
		}
		if !isShuffle {
			sawInline = true
		}
	}
	// The repart-worthy index should indeed be repartitioned and first.
	first := p.Op.Indices()[p.Decisions[0].Index].Name()
	if p.Decisions[0].Strategy != Repartition || first != "hot" {
		t.Fatalf("want hot[repart] first, got %v", p)
	}
}

func TestPlanCostMatchesOptimizerCost(t *testing.T) {
	op := NewOperator("o", nil, nil).AddIndex(fakeAccessor{name: "ix"})
	is := IndexStats{Nik: 1, Sik: 20, Siv: 100, Tj: 0.0008, Theta: 10, R: 0.95}
	st := opStats(1e5, is)
	env := testEnv12()
	p := OptimizeOperator(op, BodyOp, st, env, DefaultPlannerOptions())
	if got := PlanCost(p, st, env); math.Abs(got-p.Cost) > 1e-9 {
		t.Fatalf("PlanCost %g != optimizer cost %g", got, p.Cost)
	}
}

func TestOptimizedNeverWorseThanFixedStrategies(t *testing.T) {
	// Over a grid of stats, the optimizer's plan must cost no more than
	// any uniform strategy (it can always pick that strategy itself).
	env := testEnv12()
	op := NewOperator("o", nil, nil).AddIndex(planIdx{fakeAccessor{name: "ix"}, schemeOf(16)})
	for _, theta := range []float64{1, 2, 10, 100} {
		for _, r := range []float64{0.01, 0.5, 1} {
			for _, siv := range []float64{10, 1000, 30000} {
				is := IndexStats{Nik: 1, Sik: 20, Siv: siv, Tj: 0.0008, Theta: theta, R: r}
				st := opStats(1e5, is)
				p := OptimizeOperator(op, BodyOp, st, env, DefaultPlannerOptions())
				for _, alt := range []float64{
					costBaseline(st, is, env),
					costCache(st, is, env),
				} {
					if p.Cost > alt+1e-9 {
						t.Fatalf("theta=%g r=%g siv=%g: plan cost %g worse than fixed %g (%v)",
							theta, r, siv, p.Cost, alt, p)
					}
				}
			}
		}
	}
}

func TestMaxRelStdDev(t *testing.T) {
	uniform := []map[string]float64{{"x": 5}, {"x": 5}, {"x": 5}}
	if got := maxRelStdDev(uniform); got != 0 {
		t.Fatalf("uniform samples should have zero variance, got %g", got)
	}
	spread := []map[string]float64{{"x": 1}, {"x": 9}}
	if got := maxRelStdDev(spread); got < 1 {
		t.Fatalf("spread samples should have high rel stddev, got %g", got)
	}
	if got := maxRelStdDev([]map[string]float64{{"x": 1}}); !math.IsInf(got, 1) {
		t.Fatalf("single sample should be infinite variance, got %g", got)
	}
}

func TestStrategyAndBoundaryStrings(t *testing.T) {
	if Baseline.String() != "baseline" || LookupCache.String() != "cache" ||
		Repartition.String() != "repart" || IndexLocality.String() != "idxloc" {
		t.Fatal("strategy names changed")
	}
	if BoundaryPre.String() != "pre" || BoundaryIdx.String() != "idx" || BoundaryLate.String() != "late" {
		t.Fatal("boundary names changed")
	}
	if HeadOp.String() != "head" || BodyOp.String() != "body" || TailOp.String() != "tail" {
		t.Fatal("position names changed")
	}
}
