package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"efind/internal/kvstore"
	"efind/internal/sim"
)

// TestStrategyPositionGrid exercises every (operator position × strategy ×
// boundary) combination on the same workload and demands bit-identical
// outputs: the strategies are performance choices, never semantic ones.
func TestStrategyPositionGrid(t *testing.T) {
	positions := []struct {
		name  string
		place func(*IndexJobConf, *Operator)
	}{
		{"head", headPlace},
		{"body", bodyPlace},
		{"tail", tailPlace},
	}
	type variant struct {
		name     string
		strategy Strategy
		boundary Boundary
		forced   bool
	}
	variants := []variant{
		{"baseline", Baseline, 0, false},
		{"cache", LookupCache, 0, false},
		{"repart-pre", Repartition, BoundaryPre, true},
		{"repart-idx", Repartition, BoundaryIdx, true},
		{"repart-late", Repartition, BoundaryLate, true},
		{"idxloc", IndexLocality, BoundaryPre, true},
	}
	for _, pos := range positions {
		t.Run(pos.name, func(t *testing.T) {
			e := newE2E(t, 500, 30)
			var want []string
			for _, v := range variants {
				op := e.lookupOp(fmt.Sprintf("g-%s-%s", pos.name, v.name))
				mode := ModeBaseline
				if v.name == "cache" {
					mode = ModeCache
				} else if v.forced {
					mode = ModeCustom
				}
				conf := e.conf(fmt.Sprintf("job-g-%s-%s", pos.name, v.name), mode, op, pos.place)
				if v.forced {
					conf.ForceStrategy(op.Name(), e.store.Name(), v.strategy)
					conf.ForceBoundary(op.Name(), e.store.Name(), v.boundary)
				}
				res, err := e.rt.Submit(conf)
				if err != nil {
					t.Fatalf("%s/%s: %v", pos.name, v.name, err)
				}
				got := sortedOutput(res.Output)
				if want == nil {
					want = got
					if len(want) != 500 {
						t.Fatalf("%s/%s: %d records", pos.name, v.name, len(want))
					}
					continue
				}
				sameOutput(t, pos.name+"/"+v.name, want, got)
			}
		})
	}
}

// TestTwoShuffleIndicesOneOperator chains two re-partitioned indices in a
// single operator (two shuffling jobs back to back, §3.5).
func TestTwoShuffleIndicesOneOperator(t *testing.T) {
	e := newE2E(t, 500, 25)
	store2 := kvstore.NewHash(e.cluster, "kv2", 8, 3, 0.0005)
	for i := 0; i < 25; i++ {
		store2.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("two-%04d", i))
	}
	mkOp := func(name string) *Operator {
		op := NewOperator(name,
			func(in Pair) PreResult {
				fields := strings.Fields(in.Value)
				ik := fields[len(fields)-1]
				return PreResult{Pair: in, Keys: [][]string{{ik}, {ik}}}
			},
			func(pair Pair, results [][]KeyResult, emit Emit) {
				a, b := "", ""
				if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
					a = results[0][0].Values[0]
				}
				if len(results[1]) > 0 && len(results[1][0].Values) > 0 {
					b = results[1][0].Values[0]
				}
				emit(Pair{Key: pair.Key, Value: a + "&" + b})
			})
		op.AddIndex(e.store)
		op.AddIndex(store2)
		return op
	}

	ref, err := e.rt.Submit(e.conf("job-2s-ref", ModeBaseline, mkOp("two-ref"), headPlace))
	if err != nil {
		t.Fatal(err)
	}

	conf := e.conf("job-2s", ModeCustom, mkOp("two"), headPlace)
	conf.ForceStrategy("two", e.store.Name(), Repartition)
	conf.ForceStrategy("two", "kv2", Repartition)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsRun < 3 {
		t.Fatalf("two shuffle indices should run ≥3 jobs, ran %d", res.JobsRun)
	}
	sameOutput(t, "two-shuffles", sortedOutput(ref.Output), sortedOutput(res.Output))
}

// TestFullPipelineHeadBodyTail runs one job with operators at all three
// positions under baseline and under a mixed forced plan, outputs equal.
func TestFullPipelineHeadBodyTail(t *testing.T) {
	run := func(forced bool) []string {
		e := newE2E(t, 600, 20)
		store2 := kvstore.NewHash(e.cluster, "kv2", 8, 3, 0.0004)
		store3 := kvstore.NewHash(e.cluster, "kv3", 8, 3, 0.0004)
		for i := 0; i < 20; i++ {
			store2.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("B%02d", i))
		}
		// Tail op looks up the reduce group key (record key prefix).
		for i := 0; i < 10; i++ {
			store3.Put(fmt.Sprintf("r%02d", i), fmt.Sprintf("T%02d", i))
		}

		headOp := e.lookupOp("p-head")
		bodyOp := NewOperator("p-body",
			func(in Pair) PreResult {
				fields := strings.Fields(in.Value)
				return PreResult{Pair: in, Keys: [][]string{{fields[1]}}}
			},
			func(pair Pair, results [][]KeyResult, emit Emit) {
				v := "?"
				if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
					v = results[0][0].Values[0]
				}
				emit(Pair{Key: pair.Key[:3], Value: pair.Value + "+" + v})
			})
		bodyOp.AddIndex(store2)
		tailOp := NewOperator("p-tail",
			func(in Pair) PreResult {
				return PreResult{Pair: in, Keys: [][]string{{in.Key}}}
			},
			func(pair Pair, results [][]KeyResult, emit Emit) {
				v := "?"
				if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
					v = results[0][0].Values[0]
				}
				emit(Pair{Key: pair.Key, Value: pair.Value + "/" + v})
			})
		tailOp.AddIndex(store3)

		conf := e.conf("job-pipeline", ModeBaseline, headOp, headPlace)
		conf.AddBodyIndexOperator(bodyOp)
		conf.AddTailIndexOperator(tailOp)
		if forced {
			conf.Mode = ModeCustom
			conf.ForceStrategy("p-head", e.store.Name(), Repartition)
			conf.ForceStrategy("p-body", "kv2", LookupCache)
			conf.ForceStrategy("p-tail", "kv3", Repartition)
		}
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatal(err)
		}
		if forced && res.JobsRun < 3 {
			t.Fatalf("forced plan should run head-shuffle + main + tail-shuffle jobs, ran %d", res.JobsRun)
		}
		return sortedOutput(res.Output)
	}
	base := run(false)
	mixed := run(true)
	sameOutput(t, "full-pipeline", base, mixed)
	if len(base) == 0 {
		t.Fatal("pipeline produced nothing")
	}
}

// failingAccessor errors on every lookup.
type failingAccessor struct{ fakeAccessor }

func (failingAccessor) Lookup(string) ([]string, error) {
	return nil, errors.New("index down")
}

// TestIndexErrorsSurfaceAsCounters: a failing index yields empty results
// plus an error counter, never a crash.
func TestIndexErrorsSurfaceAsCounters(t *testing.T) {
	e := newE2E(t, 100, 10)
	op := NewOperator("err-op", nil, nil).AddIndex(failingAccessor{fakeAccessor{name: "down"}})
	conf := e.conf("job-err", ModeBaseline, op, headPlace)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters["efind.err-op.ix.down.errors"] != 100 {
		t.Fatalf("error counter = %d, want 100", res.Counters["efind.err-op.ix.down.errors"])
	}
	if res.Output.Records() != 100 {
		t.Fatalf("records should still flow: %d", res.Output.Records())
	}
}

// TestCatalogReuseAcrossJobs: statistics harvested by one dynamic job feed
// a later optimized submission of the same operators (the catalog
// persists across jobs, Figure 8).
func TestCatalogReuseAcrossJobs(t *testing.T) {
	e := newAdaptiveE2E(t, 3000, 30)
	op1 := e.lookupOp("shared-op")
	if _, err := e.rt.Submit(e.conf("job-first", ModeDynamic, op1, headPlace)); err != nil {
		t.Fatal(err)
	}
	if e.rt.Catalog.Get("shared-op") == nil {
		t.Fatal("dynamic run should populate the catalog")
	}
	// Same operator name in a second job: optimized planning works with
	// no stats pass.
	op2 := e.lookupOp("shared-op")
	res, err := e.rt.Submit(e.conf("job-second", ModeOptimized, op2, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Plan.Head[0].Decisions[0]; d.Strategy == Baseline {
		t.Fatalf("optimized run should have used catalog stats, got %v", res.Plan)
	}

	// A third dynamic submission warm-starts from the catalog: no
	// baseline statistics phase, plan comes out optimized immediately.
	op3 := e.lookupOp("shared-op")
	warm, err := e.rt.Submit(e.conf("job-third", ModeDynamic, op3, headPlace))
	if err != nil {
		t.Fatal(err)
	}
	if d := warm.Plan.Head[0].Decisions[0]; d.Strategy == Baseline {
		t.Fatalf("warm dynamic run should start from the catalog plan, got %v", warm.Plan)
	}
	if warm.Replanned {
		t.Fatal("warm dynamic run should not need a mid-job change")
	}
	if warm.VTime >= res.VTime*1.3 {
		t.Fatalf("warm dynamic (%g) should track optimized (%g)", warm.VTime, res.VTime)
	}
}

// TestRecordsWithoutKeysFlowThroughShuffle: records whose preProcess
// extracts no key must survive a re-partitioning shuffle untouched.
func TestRecordsWithoutKeysFlowThroughShuffle(t *testing.T) {
	e := newE2E(t, 300, 20)
	op := NewOperator("sparse",
		func(in Pair) PreResult {
			// Only every third record gets a lookup key.
			fields := strings.Fields(in.Value)
			if in.Key[len(in.Key)-1]%3 != 0 {
				return PreResult{Pair: in}
			}
			return PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair Pair, results [][]KeyResult, emit Emit) {
			tag := "skipped"
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				tag = "hit"
			}
			emit(Pair{Key: pair.Key, Value: tag})
		})
	op.AddIndex(e.store)

	ref, err := e.rt.Submit(e.conf("job-sparse-ref", ModeBaseline, cloneSparseOp(op, "sparse-ref", e), headPlace))
	if err != nil {
		t.Fatal(err)
	}
	conf := e.conf("job-sparse", ModeCustom, op, headPlace)
	conf.ForceStrategy("sparse", e.store.Name(), Repartition)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "sparse", sortedOutput(ref.Output), sortedOutput(res.Output))
	if res.Output.Records() != 300 {
		t.Fatalf("records = %d, want 300 (pass-through records must survive)", res.Output.Records())
	}
}

func cloneSparseOp(src *Operator, name string, e *e2eEnv) *Operator {
	op := NewOperator(name, src.pre, src.post)
	op.AddIndex(e.store)
	return op
}

// TestCacheSharedPerNodeNotPerTask: the lookup cache is per machine, so a
// key seen by an earlier task on the same node hits for later tasks.
func TestCacheSharedPerNodeNotPerTask(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Nodes = 1 // single node: all tasks share one cache
	cfg.MapSlotsPerNode = 1
	cfg.ReduceSlotsPerNode = 1
	cfg.TaskStartup = 0.001
	e := newE2EWith(t, cfg, 400, 10)
	op := e.lookupOp("one-node")
	conf := e.conf("job-one-node", ModeCache, op, headPlace)
	if _, err := e.rt.Submit(conf); err != nil {
		t.Fatal(err)
	}
	// 10 distinct keys over 400 records on one shared cache: exactly 10
	// real lookups.
	if got := e.store.Lookups(); got != 10 {
		t.Fatalf("lookups = %d, want 10 (cache must be node-shared across tasks)", got)
	}
}
