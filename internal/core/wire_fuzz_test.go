package core

import "testing"

// FuzzCarrierRoundTrip exercises the carrier codec with arbitrary byte
// strings: decoding must never panic, and anything that decodes must
// re-encode into a canonical form that survives a second round trip
// bit-identically.
func FuzzCarrierRoundTrip(f *testing.F) {
	seed := []*carrier{
		{},
		{Pair: Pair{Key: "k", Value: "v"}},
		{
			Pair: Pair{Key: "user", Value: "payload"},
			Keys: [][]string{{"ik0001", "ik0002"}, nil, {"z"}},
			Results: [][]KeyResult{
				{{Key: "ik0001", Values: []string{"a", "b"}}, {Key: "ik0002"}},
				nil,
			},
		},
		{Pair: Pair{Key: "\x00p odd", Value: "1:2;3"}, Keys: [][]string{{""}}},
	}
	for _, c := range seed {
		f.Add(encodeCarrier(c))
	}
	f.Add("")
	f.Add("0:0:0;0;")
	f.Add("1:k1:v2;1;1:a0;0;")
	f.Add("1:k1:v99999999999999999999;")
	f.Add("1:k1:v1048577;")
	f.Add("garbage without any structure")

	f.Fuzz(func(t *testing.T, s string) {
		c, err := decodeCarrier(s)
		if err != nil {
			return // rejecting corrupt input is fine; panicking is not
		}
		enc := encodeCarrier(c)
		c2, err := decodeCarrier(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v\ninput: %q\nencoded: %q", err, s, enc)
		}
		if enc2 := encodeCarrier(c2); enc2 != enc {
			t.Fatalf("encoding is not canonical after one round trip:\n first: %q\nsecond: %q", enc, enc2)
		}
	})
}

// TestDecodeCarrierRejectsHugeInnerCounts pins the per-list element bound:
// an inner count just above maxListLen must be rejected up front instead
// of driving a huge decode loop.
func TestDecodeCarrierRejectsHugeInnerCounts(t *testing.T) {
	cases := []string{
		"0:0:1;1048577;",                 // keys-in-list count too large
		"0:0:0;1;1048577;",               // results-in-list count too large
		"0:0:0;1;1;1:k1048577;",          // values-per-result count too large
		"0:0:1048577;",                   // outer key-list count (regression)
		"0:0:0;1048577;",                 // outer result-list count (regression)
		"0:0:1;-2;",                      // negative inner count
		"0:0:1;1;3:abc0;1;1;1:x0;1:y0;x", // trailing bytes
	}
	for _, s := range cases {
		if _, err := decodeCarrier(s); err == nil {
			t.Errorf("decodeCarrier(%q) should fail", s)
		}
	}
}
