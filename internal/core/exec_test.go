package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"efind/internal/dfs"
	"efind/internal/kvstore"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// e2eEnv bundles a small cluster with a loaded KV index and an input whose
// lookup keys repeat both within and across chunks (Θ≈5).
type e2eEnv struct {
	cluster *sim.Cluster
	fs      *dfs.FS
	rt      *Runtime
	store   *kvstore.Store
	input   *dfs.File
}

func newE2E(tb testing.TB, records, distinctKeys int) *e2eEnv {
	tb.Helper()
	cfg := sim.DefaultConfig()
	cfg.Nodes = 6
	cfg.MapSlotsPerNode = 2
	cfg.ReduceSlotsPerNode = 2
	cfg.TaskStartup = 0.01
	return newE2EWith(tb, cfg, records, distinctKeys)
}

func newE2EWith(tb testing.TB, cfg sim.Config, records, distinctKeys int) *e2eEnv {
	tb.Helper()
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 2 << 10
	engine := mapreduce.New(cluster, fs)
	rt := NewRuntime(engine)

	store := kvstore.NewHash(cluster, "kv", 16, 3, 0.0008)
	for i := 0; i < distinctKeys; i++ {
		store.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("value-for-%04d", i))
	}

	recs := make([]dfs.Record, records)
	for i := range recs {
		ik := fmt.Sprintf("ik%04d", i%distinctKeys)
		recs[i] = dfs.Record{Key: fmt.Sprintf("r%05d", i), Value: "payload " + ik}
	}
	input, err := fs.Create("input", recs)
	if err != nil {
		tb.Fatal(err)
	}
	if records >= 200 && len(input.Chunks) < 4 {
		tb.Fatalf("test input should span several chunks, got %d", len(input.Chunks))
	}
	return &e2eEnv{cluster: cluster, fs: fs, rt: rt, store: store, input: input}
}

// lookupOp extracts the index key (last token of the value) and appends
// the lookup results to the record.
func (e *e2eEnv) lookupOp(name string) *Operator {
	op := NewOperator(name,
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			return PreResult{Pair: in, Keys: [][]string{{fields[len(fields)-1]}}}
		},
		func(pair Pair, results [][]KeyResult, emit Emit) {
			vals := "none"
			if len(results) > 0 && len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				vals = strings.Join(results[0][0].Values, ",")
			}
			emit(Pair{Key: pair.Key, Value: pair.Value + " => " + vals})
		})
	op.AddIndex(e.store)
	return op
}

func (e *e2eEnv) conf(name string, mode Mode, op *Operator, place func(*IndexJobConf, *Operator)) *IndexJobConf {
	conf := &IndexJobConf{
		Name:      name,
		Input:     e.input,
		Mode:      mode,
		NumReduce: 4,
		Mapper: func(_ *mapreduce.TaskContext, in Pair, emit Emit) {
			emit(in)
		},
		Reducer: mapreduce.IdentityReduce,
	}
	place(conf, op)
	return conf
}

func headPlace(c *IndexJobConf, op *Operator) { c.AddHeadIndexOperator(op) }
func bodyPlace(c *IndexJobConf, op *Operator) { c.AddBodyIndexOperator(op) }
func tailPlace(c *IndexJobConf, op *Operator) { c.AddTailIndexOperator(op) }

// sortedOutput canonicalizes an output file for comparison.
func sortedOutput(f *dfs.File) []string {
	var out []string
	for _, r := range f.All() {
		out = append(out, r.Key+" :: "+r.Value)
	}
	sort.Strings(out)
	return out
}

func sameOutput(t *testing.T, label string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: output sizes differ: %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: outputs differ at %d:\n  %q\n  %q", label, i, a[i], b[i])
		}
	}
}

func TestAllStrategiesProduceIdenticalOutput(t *testing.T) {
	for _, position := range []struct {
		name  string
		place func(*IndexJobConf, *Operator)
	}{
		{"head", headPlace},
		{"body", bodyPlace},
		{"tail", tailPlace},
	} {
		t.Run(position.name, func(t *testing.T) {
			e := newE2E(t, 600, 40)

			runMode := func(label string, mode Mode, force Strategy, forceIt bool) []string {
				op := e.lookupOp("op-" + position.name + "-" + label)
				conf := e.conf("job-"+position.name+"-"+label, mode, op, position.place)
				if forceIt {
					conf.ForceStrategy(op.Name(), e.store.Name(), force)
				}
				res, err := e.rt.Submit(conf)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if res.VTime <= 0 {
					t.Fatalf("%s: no virtual time", label)
				}
				return sortedOutput(res.Output)
			}

			base := runMode("base", ModeBaseline, 0, false)
			if len(base) != 600 {
				t.Fatalf("baseline output has %d records, want 600", len(base))
			}
			sameOutput(t, "cache", base, runMode("cache", ModeCache, 0, false))
			sameOutput(t, "repart", base, runMode("repart", ModeCustom, Repartition, true))
			sameOutput(t, "idxloc", base, runMode("idxloc", ModeCustom, IndexLocality, true))
		})
	}
}

func TestRepartReducesIndexLoad(t *testing.T) {
	e := newE2E(t, 1000, 50)

	run := func(label string, mode Mode, force bool, strat Strategy) int64 {
		e.store.ResetStats()
		op := e.lookupOp("op-" + label)
		conf := e.conf("job-"+label, mode, op, headPlace)
		if force {
			conf.ForceStrategy(op.Name(), e.store.Name(), strat)
		}
		if _, err := e.rt.Submit(conf); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return e.store.Lookups()
	}

	baseLookups := run("base", ModeBaseline, false, 0)
	if baseLookups != 1000 {
		t.Fatalf("baseline should look up once per record, got %d", baseLookups)
	}
	cacheLookups := run("cache", ModeCache, false, 0)
	if cacheLookups >= baseLookups {
		t.Fatalf("cache should reduce lookups: %d vs %d", cacheLookups, baseLookups)
	}
	repartLookups := run("repart", ModeCustom, true, Repartition)
	// Re-partitioning groups all 50 distinct keys globally: lookups should
	// approach the distinct count (plus pass-through noise).
	if repartLookups > 100 {
		t.Fatalf("repart should collapse to ~50 lookups, got %d", repartLookups)
	}
	idxlocLookups := run("idxloc", ModeCustom, true, IndexLocality)
	if idxlocLookups > 100 {
		t.Fatalf("idxloc should collapse to ~50 lookups, got %d", idxlocLookups)
	}
}

func TestRepartBoundaries(t *testing.T) {
	for _, b := range []Boundary{BoundaryPre, BoundaryIdx, BoundaryLate} {
		t.Run(b.String(), func(t *testing.T) {
			e := newE2E(t, 400, 25)
			op := e.lookupOp("op-b")
			conf := e.conf("job-b", ModeCustom, op, headPlace)
			conf.ForceStrategy(op.Name(), e.store.Name(), Repartition)
			conf.ForceBoundary(op.Name(), e.store.Name(), b)
			res, err := e.rt.Submit(conf)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sortedOutput(res.Output)); got != 400 {
				t.Fatalf("boundary %v lost records: %d", b, got)
			}

			// Reference: baseline output.
			opB := e.lookupOp("op-b-ref")
			ref, err := e.rt.Submit(e.conf("job-b-ref", ModeBaseline, opB, headPlace))
			if err != nil {
				t.Fatal(err)
			}
			sameOutput(t, b.String(), sortedOutput(ref.Output), sortedOutput(res.Output))
		})
	}
}

func TestIdxLocSchedulesOnIndexHosts(t *testing.T) {
	e := newE2E(t, 800, 40)
	op := e.lookupOp("op-loc")
	conf := e.conf("job-loc", ModeCustom, op, headPlace)
	conf.ForceStrategy(op.Name(), e.store.Name(), IndexLocality)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	// With index locality every grouped lookup should be served locally:
	// the kvstore charges no network when the task node hosts the key's
	// partition, so compare against a repart run (remote lookups).
	if res.JobsRun < 2 {
		t.Fatalf("idxloc should add a shuffling job, ran %d", res.JobsRun)
	}
}

func TestMultipleOperatorsChained(t *testing.T) {
	e := newE2E(t, 500, 30)
	// Second store with different values.
	store2 := kvstore.NewHash(e.cluster, "kv2", 8, 3, 0.0005)
	for i := 0; i < 30; i++ {
		store2.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("second-%04d", i))
	}
	op1 := e.lookupOp("first")
	op2 := NewOperator("second",
		func(in Pair) PreResult {
			// key is embedded in the enriched value: "payload ikNNNN => ..."
			fields := strings.Fields(in.Value)
			return PreResult{Pair: in, Keys: [][]string{{fields[1]}}}
		},
		func(pair Pair, results [][]KeyResult, emit Emit) {
			extra := ""
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				extra = results[0][0].Values[0]
			}
			emit(Pair{Key: pair.Key, Value: pair.Value + " ++ " + extra})
		})
	op2.AddIndex(store2)

	conf := e.conf("job-chain", ModeBaseline, op1, headPlace)
	conf.AddBodyIndexOperator(op2)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	out := sortedOutput(res.Output)
	if len(out) != 500 {
		t.Fatalf("chained output has %d records", len(out))
	}
	for _, line := range out[:5] {
		if !strings.Contains(line, "=>") || !strings.Contains(line, "++ second-") {
			t.Fatalf("chained enrichment missing in %q", line)
		}
	}
}

func TestMultiIndexSingleOperator(t *testing.T) {
	e := newE2E(t, 400, 20)
	store2 := kvstore.NewHash(e.cluster, "kv2", 8, 3, 0.0005)
	for i := 0; i < 20; i++ {
		store2.Put(fmt.Sprintf("ik%04d", i), fmt.Sprintf("alt-%04d", i))
	}
	op := NewOperator("multi",
		func(in Pair) PreResult {
			fields := strings.Fields(in.Value)
			ik := fields[len(fields)-1]
			return PreResult{Pair: in, Keys: [][]string{{ik}, {ik}}}
		},
		func(pair Pair, results [][]KeyResult, emit Emit) {
			a, b := "", ""
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				a = results[0][0].Values[0]
			}
			if len(results[1]) > 0 && len(results[1][0].Values) > 0 {
				b = results[1][0].Values[0]
			}
			emit(Pair{Key: pair.Key, Value: a + "|" + b})
		})
	op.AddIndex(e.store)
	op.AddIndex(store2)

	conf := e.conf("job-multi", ModeBaseline, op, headPlace)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	out := sortedOutput(res.Output)
	if len(out) != 400 {
		t.Fatalf("multi-index output has %d records", len(out))
	}
	if !strings.Contains(out[0], "value-for-") || !strings.Contains(out[0], "|alt-") {
		t.Fatalf("both indices should contribute: %q", out[0])
	}

	// Forced repart on the first index must keep output identical.
	op2 := NewOperator("multi2", nil, nil)
	*op2 = *op
	op2.name = "multi2"
	conf2 := e.conf("job-multi2", ModeCustom, op2, headPlace)
	conf2.ForceStrategy("multi2", e.store.Name(), Repartition)
	res2, err := e.rt.Submit(conf2)
	if err != nil {
		t.Fatal(err)
	}
	sameOutput(t, "multi-repart", out, sortedOutput(res2.Output))
}

func TestOptimizedModeUsesCatalog(t *testing.T) {
	e := newE2E(t, 1200, 30) // Θ = 40: strong global redundancy
	op := e.lookupOp("op-opt")
	statsConf := e.conf("job-opt-stats", ModeBaseline, op, headPlace)
	if err := e.rt.CollectStats(statsConf); err != nil {
		t.Fatal(err)
	}
	st := e.rt.Catalog.Get("op-opt")
	if st == nil {
		t.Fatal("catalog empty after CollectStats")
	}
	is := st.Index[e.store.Name()]
	if is.Theta < 10 {
		t.Fatalf("Θ should be ≈40, got %g", is.Theta)
	}
	if is.Nik < 0.99 || is.Nik > 1.01 {
		t.Fatalf("Nik should be 1, got %g", is.Nik)
	}

	conf := e.conf("job-opt", ModeOptimized, op, headPlace)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	// With Θ=40 and a nontrivial serve time the optimizer should pick a
	// shuffle strategy.
	d := res.Plan.Head[0].Decisions[0]
	if d.Strategy != Repartition && d.Strategy != IndexLocality && d.Strategy != LookupCache {
		t.Fatalf("optimizer picked %v", d.Strategy)
	}
	if len(sortedOutput(res.Output)) != 1200 {
		t.Fatal("optimized run lost records")
	}
}

func TestMapOnlyJobWithHeadOp(t *testing.T) {
	e := newE2E(t, 300, 20)
	op := e.lookupOp("op-maponly")
	conf := &IndexJobConf{
		Name:  "maponly",
		Input: e.input,
		Mode:  ModeBaseline,
		Mapper: func(_ *mapreduce.TaskContext, in Pair, emit Emit) {
			emit(in)
		},
	}
	conf.AddHeadIndexOperator(op)
	res, err := e.rt.Submit(conf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Records() != 300 {
		t.Fatalf("map-only output has %d records", res.Output.Records())
	}
}

func TestBodyTailWithoutReducerRejected(t *testing.T) {
	e := newE2E(t, 10, 5)
	op := e.lookupOp("op-x")
	conf := &IndexJobConf{Name: "bad", Input: e.input, Mode: ModeBaseline}
	conf.AddBodyIndexOperator(op)
	if _, err := e.rt.Submit(conf); err == nil {
		t.Fatal("body op without reducer must be rejected")
	}
}

func TestIdxLocOnUnpartitionedIndexRejected(t *testing.T) {
	e := newE2E(t, 10, 5)
	op := NewOperator("op-u", nil, nil).AddIndex(fakeAccessor{name: "svc"})
	conf := e.conf("bad-loc", ModeCustom, op, headPlace)
	conf.ForceStrategy("op-u", "svc", IndexLocality)
	if _, err := e.rt.Submit(conf); err == nil {
		t.Fatal("index locality on an unpartitioned index must be rejected")
	}
}

func TestDuplicateOperatorNamesRejected(t *testing.T) {
	e := newE2E(t, 10, 5)
	conf := e.conf("dup", ModeBaseline, e.lookupOp("same"), headPlace)
	conf.AddBodyIndexOperator(e.lookupOp("same"))
	if _, err := e.rt.Submit(conf); err == nil {
		t.Fatal("duplicate operator names must be rejected")
	}
}

func TestVTimeOrderingUnderRedundancy(t *testing.T) {
	// Strong global redundancy with slow index: base > cache > repart, the
	// paper's LOG-shaped ordering.
	e := newE2E(t, 2000, 25) // Θ = 80
	run := func(label string, mode Mode, strat Strategy, force bool) float64 {
		op := e.lookupOp("op-" + label)
		conf := e.conf("job-v-"+label, mode, op, headPlace)
		if force {
			conf.ForceStrategy(op.Name(), e.store.Name(), strat)
		}
		res, err := e.rt.Submit(conf)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res.VTime
	}
	base := run("base", ModeBaseline, 0, false)
	cache := run("cache", ModeCache, 0, false)
	if cache >= base {
		t.Fatalf("cache (%g) should beat base (%g) under local redundancy", cache, base)
	}
}

func TestTempFilesCleanedUp(t *testing.T) {
	e := newE2E(t, 400, 20)
	before := len(e.fs.List())
	op := e.lookupOp("op-tmp")
	conf := e.conf("job-tmp", ModeCustom, op, headPlace)
	conf.ForceStrategy(op.Name(), e.store.Name(), Repartition)
	if _, err := e.rt.Submit(conf); err != nil {
		t.Fatal(err)
	}
	after := len(e.fs.List())
	// Only the final output should remain.
	if after != before+1 {
		t.Fatalf("temp files leaked: %d files before, %d after (%v)", before, after, e.fs.List())
	}
}
