package core

import (
	"fmt"
	"math"

	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
)

// runDynamic executes a job in the adaptive mode of §4: start with the
// baseline plan (no statistics needed), collect statistics during the
// first wave of tasks, and re-optimize the running job at most once
// (Algorithm 1), reusing completed-task results when the plan changes
// (Figure 10).
func (rt *Runtime) runDynamic(conf *IndexJobConf) (*JobResult, error) {
	// Warm start (Figure 8): when the catalog already holds statistics
	// for every operator — collected by previous jobs — the adaptive
	// optimizer generates its initial plan from them and runs it
	// directly; re-optimization mid-job is only needed when statistics
	// are missing or stale, and staleness shows up as a fresh collection
	// on the next cold operator.
	ops, _ := conf.Operators()
	warm := len(ops) > 0
	for _, o := range ops {
		if rt.Catalog.Get(o.Name()) == nil {
			warm = false
			break
		}
	}
	if warm {
		rt.traceInstant("adaptive: warm start from catalog statistics")
		plan, err := rt.planWithMode(conf, ModeOptimized)
		if err != nil {
			return nil, err
		}
		// Note: no statistics are harvested from a warm run — tasks under
		// shuffle plans measure only fragments of the Table 1 terms, and
		// folding those in would corrupt the catalog's baseline-measured
		// statistics.
		return rt.runPlan(conf, plan)
	}

	basePlan, err := rt.planWithMode(conf, ModeBaseline)
	if err != nil {
		return nil, err
	}
	co, err := compilePlan(rt, conf, basePlan)
	if err != nil {
		return nil, err
	}
	if len(co.jobs) != 1 {
		return nil, fmt.Errorf("efind: internal: baseline plan compiled to %d jobs", len(co.jobs))
	}
	mainJob := co.engineJob(conf, 0, conf.Input)

	total := &JobResult{Plan: basePlan, Counters: make(map[string]int64)}
	changesLeft := conf.MaxPlanChanges
	if changesLeft == 0 {
		changesLeft = 1 // the paper changes the plan at most once
	} else if changesLeft < 0 {
		changesLeft = 0 // ablation: adaptive statistics without replanning
	}

	// First wave of map tasks under the baseline plan: the statistics
	// collection phase.
	n := len(conf.Input.Chunks)
	wave := rt.Engine.Cluster.MapSlots()
	if wave > n {
		wave = n
	}
	mp1, err := rt.run.RunMapPhase(mainJob, seq(0, wave))
	if err != nil {
		return nil, err
	}
	total.VTime += mp1.VTime
	total.JobsRun = 1
	addCounters(total.Counters, mp1.Counters)

	// Fold first-wave statistics into the catalog for the operators whose
	// work happens before the reduce phase.
	preReduce := append(append([]*Operator(nil), conf.head...), conf.body...)
	newPlan, improved := rt.reoptimize(conf, basePlan, preReduce, mp1.Stats, wave < n)

	if improved && changesLeft > 0 {
		changesLeft--
		return rt.changePlanAtMap(conf, total, mp1, newPlan, wave, n)
	}

	// No map-phase change: finish the map phase under the current plan.
	var mpRest *mapreduce.MapPhaseResult
	if wave < n {
		mpRest, err = rt.run.RunMapPhase(mainJob, seq(wave, n))
		if err != nil {
			return nil, err
		}
		total.VTime += mpRest.VTime
		addCounters(total.Counters, mpRest.Counters)
	}

	if conf.Reducer == nil {
		merged := mergeMapPhases(mp1, mpRest)
		res, err := rt.run.FinishMapOnly(mainJob, merged)
		if err != nil {
			return nil, err
		}
		total.Output = res.Output
		return total, nil
	}

	outputs := append(append([]*mapreduce.MapOutput(nil), mp1.Outputs...), outputsOf(mpRest)...)

	// Reduce phase: with tail operators present and a change still
	// allowed, run the first wave of reducers under the current plan and
	// consider a mid-reduce change (Figure 10(b)).
	if len(conf.tail) > 0 && changesLeft > 0 {
		return rt.reducePhaseAdaptive(conf, total, mainJob, outputs, basePlan)
	}

	sub, err := rt.run.RunReduceSubset(mainJob, outputs, nil)
	if err != nil {
		return nil, err
	}
	total.VTime += sub.VTime
	addCounters(total.Counters, sub.Counters)
	rt.harvestTailStats(conf, sub.Stats)
	out, err := rt.writeOutput(conf, sub.Shards, sub.Homes)
	if err != nil {
		return nil, err
	}
	total.Output = out
	return total, nil
}

// reoptimize implements Algorithm 1 for the given operators: fold the
// task statistics into the catalog, refuse when variance is too high,
// otherwise build a new plan and accept it only if it beats the current
// plan by more than the plan-change cost. canChange is false when no work
// remains for the new plan to improve (e.g. all splits already processed).
func (rt *Runtime) reoptimize(conf *IndexJobConf, cur *JobPlan, ops []*Operator, tasks []mapreduce.TaskStats, canChange bool) (*JobPlan, bool) {
	// Algorithm 1, lines 1–3: statistics must be stable across tasks.
	// Operators whose statistics vary too much keep their current plan;
	// only stable ones are re-optimized (an operator-granular reading of
	// the paper's variance gate — a filter-heavy operator downstream sees
	// few records per task and would otherwise block the whole job).
	opSet := map[string]bool{}
	for _, o := range ops {
		st := collectStats(rt.Catalog, o, tasks, rt.Env)
		rt.traceStats(o.Name(), st)
		if st == nil || st.MaxRelStdDev > conf.VarianceThreshold {
			rt.traceInstant(fmt.Sprintf("reoptimize: operator %q skipped (unstable or missing statistics)", o.Name()))
			continue
		}
		opSet[o.Name()] = true
	}
	if len(opSet) == 0 || !canChange {
		rt.traceInstant("reoptimize: no change (no stable operators or no remaining work)")
		return nil, false
	}
	newPlan := &JobPlan{}
	curCost, newCost := 0.0, 0.0
	replace := func(plans []OperatorPlan) []OperatorPlan {
		out := make([]OperatorPlan, 0, len(plans))
		for _, p := range plans {
			if !opSet[p.Op.Name()] {
				out = append(out, p)
				continue
			}
			st := rt.Catalog.Get(p.Op.Name())
			np := OptimizeOperator(p.Op, p.Pos, st, rt.Env, conf.Planner)
			conf.applyDegrades(&np)
			// Both sides are credited with their build decisions' amortized
			// payoff, so the comparison ranks plans the way the optimizer
			// did (the plans' recorded costs stay honest per-run costs).
			curCost += PlanCost(p, st, rt.Env) - planBuildCredit(p, st, rt.Env, conf.Planner)
			newCost += np.Cost - planBuildCredit(np, st, rt.Env, conf.Planner)
			out = append(out, np)
		}
		return out
	}
	newPlan.Head = replace(cur.Head)
	newPlan.Body = replace(cur.Body)
	newPlan.Tail = replace(cur.Tail)
	newPlan.Cost = newCost

	// Algorithm 1, line 10: the improvement must exceed the change cost.
	if curCost-newCost <= conf.PlanChangeCost {
		rt.traceInstant(fmt.Sprintf("reoptimize: keep plan (improvement %.4f <= change cost %.4f)", curCost-newCost, conf.PlanChangeCost))
		return nil, false
	}
	// The new plan must actually differ.
	if newPlan.String() == cur.String() {
		rt.traceInstant("reoptimize: keep plan (re-optimized plan is identical)")
		return nil, false
	}
	rt.traceInstant(fmt.Sprintf("reoptimize: plan change accepted (modeled cost %.4f -> %.4f)", curCost, newCost))
	if planHasBuild(newPlan) {
		// Observed redundancy became a build trigger: the re-optimized
		// plan starts (or continues) piggyback index creation mid-job.
		rt.traceInstant("adaptive: piggyback index build started mid-job")
	}
	return newPlan, true
}

// traceInstant marks an adaptive-optimizer event on the engine's trace
// timeline, if a trace is attached.
func (rt *Runtime) traceInstant(name string) {
	if t := rt.Engine.Trace; t != nil {
		t.AddInstant(name, "adaptive")
	}
}

// traceStats publishes the optimizer's view of an operator's collected
// statistics — the FM-sketch Θ estimate, the miss ratio R, the serve
// time Tj, and the variance-gate reading — as registry gauges, so
// profiles record what the re-optimization decision was based on.
func (rt *Runtime) traceStats(op string, st *OperatorStats) {
	t := rt.Engine.Trace
	if t == nil || st == nil {
		return
	}
	set := func(name string, v float64) {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return // unrepresentable in JSON; absence means "no reading"
		}
		t.Metrics.SetGauge(name, v)
	}
	p := "efind." + op + ".stats."
	set(p+"n1", st.N1)
	set(p+"relstddev", st.MaxRelStdDev)
	for ix, is := range st.Index {
		set(p+ix+".nik", is.Nik)
		set(p+ix+".tj", is.Tj)
		set(p+ix+".r", is.R)
		set(p+ix+".theta", is.Theta)
	}
}

// changePlanAtMap implements Figure 10(a): completed first-wave map tasks
// are reused as-is; the remaining splits are processed under the new plan
// (including any shuffling jobs it introduces); the reduce phase consumes
// outputs from both plans.
func (rt *Runtime) changePlanAtMap(conf *IndexJobConf, total *JobResult, mp1 *mapreduce.MapPhaseResult, newPlan *JobPlan, wave, n int) (*JobResult, error) {
	co, err := compilePlan(rt, conf, newPlan)
	if err != nil {
		return nil, err
	}
	// The new plan's first job runs only the remaining splits; any
	// piggyback builders must offer from those (LIAH: build only what
	// the job reads anyway).
	co.restrictBuilds(seq(wave, n))
	total.Plan = newPlan
	total.Replanned = true
	total.ReplanPhase = "map"
	rt.traceInstant(fmt.Sprintf("adaptive: plan changed mid-map to %s", newPlan))

	input := conf.Input
	for k := range co.jobs {
		job := co.engineJob(conf, k, input)
		if k == 0 {
			job.Splits = seq(wave, n)
		}
		last := k == len(co.jobs)-1
		if !last {
			r, err := rt.run.Run(job)
			if err != nil {
				return nil, err
			}
			total.VTime += r.VTime
			total.JobsRun++
			addCounters(total.Counters, r.Counters)
			if input != conf.Input {
				if err := rt.Engine.FS.Remove(input.Name); err != nil {
					return nil, err
				}
			}
			input = r.Output
			continue
		}
		// Final job: its reducers pull from both the new-plan map tasks
		// and the completed baseline first-wave tasks.
		mpRest, err := rt.run.RunMapPhase(job, nil)
		if err != nil {
			return nil, err
		}
		total.VTime += mpRest.VTime
		total.JobsRun++
		addCounters(total.Counters, mpRest.Counters)
		if input != conf.Input {
			if err := rt.Engine.FS.Remove(input.Name); err != nil {
				return nil, err
			}
		}
		if conf.Reducer == nil {
			merged := mergeMapPhases(mp1, mpRest)
			res, err := rt.run.FinishMapOnly(job, merged)
			if err != nil {
				return nil, err
			}
			total.Output = res.Output
			return total, nil
		}
		outputs := append(append([]*mapreduce.MapOutput(nil), mp1.Outputs...), mpRest.Outputs...)
		sub, err := rt.run.RunReduceSubset(job, outputs, nil)
		if err != nil {
			return nil, err
		}
		total.VTime += sub.VTime
		addCounters(total.Counters, sub.Counters)
		rt.harvestTailStats(conf, sub.Stats)
		out, err := rt.writeOutput(conf, sub.Shards, sub.Homes)
		if err != nil {
			return nil, err
		}
		total.Output = out
	}
	return total, nil
}

// reducePhaseAdaptive implements Figure 10(b): the first wave of reduce
// tasks runs under the current plan; if re-optimization then changes the
// tail operators' plan, the remaining reducers run under the new plan
// (feeding its shuffling jobs) and the outputs are merged, keeping the
// first-wave reducers' results in the final output untouched.
func (rt *Runtime) reducePhaseAdaptive(conf *IndexJobConf, total *JobResult, mainJob *mapreduce.Job, outputs []*mapreduce.MapOutput, curPlan *JobPlan) (*JobResult, error) {
	rwave := rt.Engine.Cluster.ReduceSlots()
	if rwave > conf.NumReduce {
		rwave = conf.NumReduce
	}
	sub1, err := rt.run.RunReduceSubset(mainJob, outputs, seq(0, rwave))
	if err != nil {
		return nil, err
	}
	total.VTime += sub1.VTime
	addCounters(total.Counters, sub1.Counters)

	newPlan, improved := rt.reoptimize(conf, curPlan, conf.tail, sub1.Stats, rwave < conf.NumReduce)
	if !improved {
		var shards [][]dfs.Record
		var homes []sim.NodeID
		shards = append(shards, sub1.Shards...)
		homes = append(homes, sub1.Homes...)
		if rwave < conf.NumReduce {
			sub2, err := rt.run.RunReduceSubset(mainJob, outputs, seq(rwave, conf.NumReduce))
			if err != nil {
				return nil, err
			}
			total.VTime += sub2.VTime
			addCounters(total.Counters, sub2.Counters)
			shards = append(shards, sub2.Shards...)
			homes = append(homes, sub2.Homes...)
		}
		out, err := rt.writeOutput(conf, shards, homes)
		if err != nil {
			return nil, err
		}
		total.Output = out
		return total, nil
	}

	// Plan change in the middle of the reduce phase.
	total.Plan = newPlan
	total.Replanned = true
	total.ReplanPhase = "reduce"
	rt.traceInstant(fmt.Sprintf("adaptive: plan changed mid-reduce to %s", newPlan))
	co, err := compilePlan(rt, conf, newPlan)
	if err != nil {
		return nil, err
	}
	// Remaining reducers run the new plan's reduce side (user reduce plus
	// the stages that feed the tail shuffling jobs).
	confNoOut := *conf
	confNoOut.OutputName = ""
	newMain := co.engineJob(&confNoOut, 0, conf.Input)
	sub2, err := rt.run.RunReduceSubset(newMain, outputs, seq(rwave, conf.NumReduce))
	if err != nil {
		return nil, err
	}
	total.VTime += sub2.VTime
	addCounters(total.Counters, sub2.Counters)

	// Materialize the new-plan reducers' output and push it through the
	// tail shuffling/resume jobs.
	input, err := rt.Engine.FS.CreateSharded(rt.Engine.FS.TempName(conf.Name+"-replan"), sub2.Shards, sub2.Homes)
	if err != nil {
		return nil, err
	}
	for k := 1; k < len(co.jobs); k++ {
		job := co.engineJob(&confNoOut, k, input)
		r, err := rt.run.Run(job)
		if err != nil {
			return nil, err
		}
		total.VTime += r.VTime
		total.JobsRun++
		addCounters(total.Counters, r.Counters)
		if err := rt.Engine.FS.Remove(input.Name); err != nil {
			return nil, err
		}
		input = r.Output
	}

	// Merge: first-wave reducers' results (already post-processed by the
	// old plan's in-reduce tail stages) plus the new plan's output.
	shards := append([][]dfs.Record(nil), sub1.Shards...)
	homes := append([]sim.NodeID(nil), sub1.Homes...)
	for _, ch := range input.Chunks {
		recs, err := ch.Records()
		if err != nil {
			return nil, err
		}
		shards = append(shards, recs)
		home := sim.NodeID(0)
		if len(ch.Replicas) > 0 {
			home = ch.Replicas[0]
		}
		homes = append(homes, home)
	}
	if err := rt.Engine.FS.Remove(input.Name); err != nil {
		return nil, err
	}
	out, err := rt.writeOutput(conf, shards, homes)
	if err != nil {
		return nil, err
	}
	total.Output = out
	return total, nil
}

// planWithMode builds a plan as if the job ran under the given mode.
func (rt *Runtime) planWithMode(conf *IndexJobConf, m Mode) (*JobPlan, error) {
	clone := *conf
	clone.Mode = m
	return rt.planFor(&clone)
}

// harvestTailStats folds tail-operator statistics from reduce tasks into
// the catalog so subsequent optimized runs can plan them.
func (rt *Runtime) harvestTailStats(conf *IndexJobConf, tasks []mapreduce.TaskStats) {
	for _, o := range conf.tail {
		collectStats(rt.Catalog, o, tasks, rt.Env)
	}
}

// writeOutput materializes the final shards under the configured name.
func (rt *Runtime) writeOutput(conf *IndexJobConf, shards [][]dfs.Record, homes []sim.NodeID) (*dfs.File, error) {
	name := conf.OutputName
	if name == "" {
		name = rt.Engine.FS.TempName(conf.Name + "-out")
	}
	return rt.Engine.FS.CreateSharded(name, shards, homes)
}

// seq returns [from, to).
func seq(from, to int) []int {
	if to <= from {
		return []int{}
	}
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

// outputsOf tolerates a nil phase.
func outputsOf(mp *mapreduce.MapPhaseResult) []*mapreduce.MapOutput {
	if mp == nil {
		return nil
	}
	return mp.Outputs
}

// mergeMapPhases concatenates two map phases (the second may be nil).
func mergeMapPhases(a, b *mapreduce.MapPhaseResult) *mapreduce.MapPhaseResult {
	if b == nil {
		return a
	}
	counters := make(map[string]int64)
	addCounters(counters, a.Counters)
	addCounters(counters, b.Counters)
	return &mapreduce.MapPhaseResult{
		Outputs:  append(append([]*mapreduce.MapOutput(nil), a.Outputs...), b.Outputs...),
		Stats:    append(append([]mapreduce.TaskStats(nil), a.Stats...), b.Stats...),
		Counters: counters,
		VTime:    a.VTime + b.VTime,
	}
}
