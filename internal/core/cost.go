package core

import (
	"fmt"

	"efind/internal/index"
)

// Strategy is one of the paper's four index access strategies (§3), plus
// the adaptive-build strategy of internal/adaptix.
type Strategy int

// Strategies.
const (
	// Baseline accesses the index once per lookup key via chained
	// functions (§3.1, formula (1)).
	Baseline Strategy = iota
	// LookupCache adds a per-machine LRU cache in front of the index
	// (§3.2, formula (2)).
	LookupCache
	// Repartition inserts a shuffling job that groups equal lookup keys
	// before accessing the index (§3.3, formula (3)).
	Repartition
	// IndexLocality co-partitions lookup keys with the index partitions
	// and schedules the lookup tasks on the partition hosts (§3.4,
	// formula (4)).
	IndexLocality
	// Build is the fifth family (HAIL/LIAH-style adaptive index
	// creation): lookups run cache-fronted against the partially-built
	// index — indexed access for covered splits, scan fallback for the
	// rest — while the map scan piggybacks an incremental build of this
	// run's offered splits, so repeated jobs converge to indexed plans.
	// Only applicable to head operators of index.Buildable accessors
	// with uncovered splits remaining.
	Build
)

func (s Strategy) String() string {
	switch s {
	case Baseline:
		return "baseline"
	case LookupCache:
		return "cache"
	case Repartition:
		return "repart"
	case IndexLocality:
		return "idxloc"
	case Build:
		return "build"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Boundary picks where a re-partitioning plan materializes the first
// job's output (the paper varies the job boundary to minimize the
// materialized size, Cost_result = f·N1·S_min).
type Boundary int

// Boundaries.
const (
	// BoundaryPre materializes the pre-processed carriers right after the
	// group-by; the lookup runs memoized in the next job's map tasks
	// (the "first case" of Figure 7, also the only boundary compatible
	// with index locality).
	BoundaryPre Boundary = iota
	// BoundaryIdx performs the lookup in the shuffle job's reduce and
	// materializes carriers with results attached.
	BoundaryIdx
	// BoundaryLate runs the rest of the operator pipeline (remaining
	// lookups, postProcess, and the original Map for head operators)
	// inside the shuffle job's reduce and materializes its final output.
	BoundaryLate
)

func (b Boundary) String() string {
	switch b {
	case BoundaryPre:
		return "pre"
	case BoundaryIdx:
		return "idx"
	case BoundaryLate:
		return "late"
	default:
		return fmt.Sprintf("boundary(%d)", int(b))
	}
}

// OpPosition locates an operator in the MapReduce data flow.
type OpPosition int

// Operator positions.
const (
	HeadOp OpPosition = iota // before Map
	BodyOp                   // between Map and Reduce
	TailOp                   // after Reduce
)

func (p OpPosition) String() string {
	switch p {
	case HeadOp:
		return "head"
	case BodyOp:
		return "body"
	default:
		return "tail"
	}
}

// lookupUnit is the cost of one remote index lookup: network transfer of
// key and result plus the index serve time ((Sik+Siv)/BW + Tj).
func lookupUnit(is IndexStats, env Env) float64 {
	return (is.Sik+is.Siv)/env.BW + is.Tj
}

// costBaseline implements formula (1): Cost_base = N1·Nik·((Sik+Siv)/BW + Tj).
func costBaseline(st *OperatorStats, is IndexStats, env Env) float64 {
	return st.N1 * is.Nik * lookupUnit(is, env)
}

// costCache implements formula (2):
// Cost_cache = N1·Nik·(Tcache + R·((Sik+Siv)/BW + Tj)).
func costCache(st *OperatorStats, is IndexStats, env Env) float64 {
	return st.N1 * is.Nik * (env.Tcache + is.R*lookupUnit(is, env))
}

// repartParts returns the three components of formula (3) for a given
// effective carrier size and materialization size:
// Cost_repart = Cost_shuffle + Cost_result + Cost_lookup.
func repartParts(st *OperatorStats, is IndexStats, env Env, spreEff, smin float64) (shuffle, result, lookup float64) {
	shuffle = st.N1 * spreEff / env.BW
	result = env.F * st.N1 * smin
	theta := is.Theta
	if theta < 1 {
		theta = 1
	}
	lookup = st.N1 * is.Nik / theta * lookupUnit(is, env)
	return shuffle, result, lookup
}

// costRepart implements formula (3) plus the fixed overhead of the extra
// shuffling job (for the BoundaryPre layout, whose lookups run map-side).
func costRepart(st *OperatorStats, is IndexStats, env Env, spreEff, smin float64) float64 {
	s, r, l := repartParts(st, is, env, spreEff, smin)
	return s + r + l + env.JobOverhead
}

// costRepartAt prices a re-partitioning plan at a specific boundary:
// BoundaryIdx/BoundaryLate run the deduplicated lookups inside the shuffle
// job's reduce tasks, whose lane count is lower than the map side's, so
// the lookup term scales by the environment's lane factor.
func costRepartAt(b Boundary, st *OperatorStats, is IndexStats, env Env, spreEff, smin float64) float64 {
	s, r, l := repartParts(st, is, env, spreEff, smin)
	if b != BoundaryPre {
		l *= env.laneFactor()
	}
	return s + r + l + env.JobOverhead
}

// bestRepartBoundary returns the boundary with the lowest total modeled
// cost (materialized size and lookup-lane penalty traded off together)
// and that cost.
func bestRepartBoundary(pos OpPosition, st *OperatorStats, is IndexStats, env Env, spreEff, sidxEff float64) (Boundary, float64) {
	sizes := boundarySizes(pos, st, spreEff, sidxEff)
	best, bestCost := BoundaryPre, costRepartAt(BoundaryPre, st, is, env, spreEff, sizes[BoundaryPre])
	for _, b := range []Boundary{BoundaryIdx, BoundaryLate} {
		if c := costRepartAt(b, st, is, env, spreEff, sizes[b]); c < bestCost {
			best, bestCost = b, c
		}
	}
	return best, bestCost
}

// costIdxLoc implements formula (4): the shuffle and result costs of
// re-partitioning (with the BoundaryPre materialization the strategy
// requires) plus local lookups and the transfer of the main data to the
// index partition hosts:
// Cost_idxloc = Cost_shuffle + Cost_result + N1·Nik/Θ·Tj + N1·Spre/BW.
func costIdxLoc(st *OperatorStats, is IndexStats, env Env, spreEff float64) float64 {
	shuffle := st.N1 * spreEff / env.BW
	result := env.F * st.N1 * spreEff
	theta := is.Theta
	if theta < 1 {
		theta = 1
	}
	lookup := st.N1*is.Nik/theta*is.Tj + st.N1*spreEff/env.BW
	return shuffle + result + lookup + env.JobOverhead
}

// boundarySizes returns the candidate materialization sizes for the last
// re-partitioned index of an operator, keyed by boundary: the carrier
// before the lookup (Spre-effective), after the lookup (Sidx-effective),
// and after running the remaining pipeline (Smap for head operators,
// Spost otherwise), mirroring the paper's S_min sets.
func boundarySizes(pos OpPosition, st *OperatorStats, spreEff, sidxEff float64) map[Boundary]float64 {
	late := st.Spost
	if pos == HeadOp && st.Smap > 0 {
		late = st.Smap
	}
	return map[Boundary]float64{
		BoundaryPre:  spreEff,
		BoundaryIdx:  sidxEff,
		BoundaryLate: late,
	}
}

// BuildModel captures a buildable index's current state for the cost
// model: how far the build has progressed, what a run's piggyback build
// costs, and what each built split is worth.
type BuildModel struct {
	// Covered and Total are the committed and total build units (input
	// splits) from the registry.
	Covered, Total int
	// ScanTime is the per-lookup serve penalty of one uncovered split.
	ScanTime float64
	// BuildTime is the per-record charge of the piggyback build stage.
	BuildTime float64
	// Offer is how many splits this run offers to build (already capped
	// to the uncovered remainder).
	Offer int
	// TjIdx is the fully-built serve time (the underlying store's T_j).
	TjIdx float64
}

// TjAt models the blended serve time at a given coverage: the built
// store's T_j plus the scan fallback over every uncovered split. This is
// exactly Buildable.ServeTime's formula, so modeled and charged serve
// times agree by construction.
func (m BuildModel) TjAt(covered int) float64 {
	if covered > m.Total {
		covered = m.Total
	}
	return m.TjIdx + float64(m.Total-covered)*m.ScanTime
}

// Completeness is the covered fraction in [0,1].
func (m BuildModel) Completeness() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Covered) / float64(m.Total)
}

// buildModelOf derives the build model from an accessor, if it is
// buildable. The declared geometry (store T_j, per-split scan time) is
// read from the accessor itself rather than from catalog measurements,
// so a plan priced after more splits committed uses the current coverage
// even when the catalog's measured T_j is stale.
func buildModelOf(a index.Accessor) (BuildModel, bool) {
	b, ok := a.(index.Buildable)
	if !ok {
		return BuildModel{}, false
	}
	covered, total := b.BuildProgress()
	m := BuildModel{
		Covered:   covered,
		Total:     total,
		ScanTime:  b.ScanServeTime(),
		BuildTime: b.BuildCharge(),
		Offer:     len(b.OfferSplits()),
		TjIdx:     b.ServeTime() - float64(total-covered)*b.ScanServeTime(),
	}
	if m.Offer > total-covered {
		m.Offer = total - covered
	}
	return m, true
}

// effectiveIndexStats overrides the catalog's measured T_j with the
// build model's T_j at current coverage for buildable accessors: the
// measurement was taken at the coverage of the measuring run, and a
// commit since then would mis-price every strategy of this index.
// Non-buildable accessors pass through unchanged.
func effectiveIndexStats(a index.Accessor, is IndexStats) (IndexStats, BuildModel, bool) {
	m, ok := buildModelOf(a)
	if !ok {
		return is, BuildModel{}, false
	}
	is.Tj = m.TjAt(m.Covered)
	return is, m, true
}

// costBuild prices one run under the build strategy: cache-fronted
// lookups at the current coverage's blended serve time (is.Tj must
// already be TjAt(Covered), see effectiveIndexStats) plus the BuildCost
// term — the piggyback stage touches the offered fraction of the input
// once per record:
//
//	Cost_build = Cost_cache(TjAt(c)) + N1·(Offer/Total)·BuildTime
func costBuild(st *OperatorStats, is IndexStats, env Env, m BuildModel) float64 {
	c := costCache(st, is, env)
	if m.Total > 0 && m.Offer > 0 {
		c += st.N1 * float64(m.Offer) / float64(m.Total) * m.BuildTime
	}
	return c
}

// buildSavings is the modeled per-future-run payoff of committing this
// run's offered splits: every cache-missing lookup's serve time drops by
// Offer·ScanTime once they are built:
//
//	savings = N1·Nik·R·Offer·ScanTime
func buildSavings(st *OperatorStats, is IndexStats, env Env, m BuildModel) float64 {
	return st.N1 * is.Nik * is.R * float64(m.Offer) * m.ScanTime
}

// PredictBuildRuns predicts the break-even run count of the build
// strategy against a non-build alternative costing alt per run: the
// smallest r such that r runs under build (coverage advancing by Offer
// each run) cost no more cumulatively than r runs of the alternative.
// Returns -1 when no break-even occurs within maxRuns (building never
// pays off, e.g. Offer is 0 or the build charge dominates the savings).
func PredictBuildRuns(st *OperatorStats, is IndexStats, env Env, m BuildModel, alt float64, maxRuns int) int {
	cumBuild, cumAlt := 0.0, 0.0
	covered := m.Covered
	for r := 1; r <= maxRuns; r++ {
		isAt := is
		isAt.Tj = m.TjAt(covered)
		offer := m.Offer
		if offer > m.Total-covered {
			offer = m.Total - covered
		}
		run := costCache(st, isAt, env)
		if offer > 0 && m.Total > 0 {
			run += st.N1 * float64(offer) / float64(m.Total) * m.BuildTime
		}
		covered += offer
		cumBuild += run
		cumAlt += alt
		if cumBuild <= cumAlt {
			return r
		}
	}
	return -1
}

// bestBoundary picks the boundary minimizing the materialized size,
// breaking ties toward earlier boundaries (less work in the reduce).
func bestBoundary(sizes map[Boundary]float64) (Boundary, float64) {
	best, bestSize := BoundaryPre, sizes[BoundaryPre]
	for _, b := range []Boundary{BoundaryIdx, BoundaryLate} {
		if sizes[b] < bestSize {
			best, bestSize = b, sizes[b]
		}
	}
	return best, bestSize
}
