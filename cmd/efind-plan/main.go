// Command efind-plan explains EFind's cost-based optimizer: given the
// Table 1 statistics of one index access operation, it prices all four
// strategies (formulas (1)–(4) of the paper) and prints the chosen plan
// with a cost breakdown — a what-if tool for understanding when caching,
// re-partitioning, or index locality pays off.
//
// Example:
//
//	efind-plan -n1 100000 -nik 1 -sik 20 -siv 1024 -tj 0.8ms -theta 8 -r 0.9
//	efind-plan -theta 1 -r 1 -siv 30720        # distinct keys, big results
//	efind-plan -profile BENCH_ci.json          # render a bench profile
//
// With -profile, the tool instead renders a machine-readable job profile
// written by `efind-bench -profile` as a human-readable report: per-stage
// virtual times, per-index modeled-vs-observed costs, and the sorted
// counter/gauge snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"efind/internal/core"
	"efind/internal/index"
	"efind/internal/obs"
	"efind/internal/sim"
)

func main() {
	var (
		profile = flag.String("profile", "", "render this BENCH profile JSON instead of running the what-if model")
		n1      = flag.Float64("n1", 50000, "records per parallel lookup lane (Table 1's N1)")
		nik     = flag.Float64("nik", 1, "average lookup keys per record (Nik)")
		sik     = flag.Float64("sik", 20, "average key size in bytes (Sik)")
		siv     = flag.Float64("siv", 1024, "average result size per key in bytes (Siv)")
		tj      = flag.Duration("tj", 800*time.Microsecond, "index serve time per lookup (Tj)")
		theta   = flag.Float64("theta", 2, "average duplicates per distinct key (Θ)")
		r       = flag.Float64("r", 0.8, "lookup cache miss ratio (R)")
		spre    = flag.Float64("spre", 120, "carrier size after preProcess in bytes (Spre)")
		spost   = flag.Float64("spost", 150, "output size after postProcess in bytes (Spost)")
		pos     = flag.String("pos", "body", "operator position: head, body, or tail")
		part    = flag.Bool("partitioned", true, "index exposes a partition scheme (enables index locality)")
		bw      = flag.Float64("bw", 125e6, "network bandwidth, bytes/s (BW)")
		fCost   = flag.Float64("f", 2.5e-8, "DFS store+retrieve cost, s/byte (f)")
		startup = flag.Float64("startup", 0.005, "task startup, s (drives the extra-job overhead)")
	)
	flag.Parse()

	if *profile != "" {
		p, err := obs.ReadProfile(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-plan: %v\n", err)
			os.Exit(1)
		}
		for _, line := range core.RenderProfile(p) {
			fmt.Println(line)
		}
		return
	}

	env := core.Env{
		BW:          *bw,
		F:           *fCost,
		Tcache:      1e-6,
		Nodes:       96,
		JobOverhead: 4 * *startup,
		LaneFactor:  2,
	}
	is := core.IndexStats{
		Nik: *nik, Sik: *sik, Siv: *siv,
		Tj: tj.Seconds(), Theta: *theta, R: *r,
	}
	st := &core.OperatorStats{
		N1: *n1, Records: int64(*n1 * 96),
		S1: *spre, Spre: *spre, Sidx: *spre + *nik*(*sik+*siv), Spost: *spost, Smap: *spost,
		Index: map[string]core.IndexStats{"ix": is},
	}

	position := core.BodyOp
	switch *pos {
	case "head":
		position = core.HeadOp
	case "tail":
		position = core.TailOp
	case "body":
	default:
		fmt.Fprintf(os.Stderr, "efind-plan: unknown position %q (head|body|tail)\n", *pos)
		os.Exit(1)
	}

	op := core.NewOperator("what-if", nil, nil)
	if *part {
		op.AddIndex(partitionedIdx{})
	} else {
		op.AddIndex(plainIdx{})
	}

	fmt.Println("EFind cost model (per-lane virtual seconds, formulas (1)-(4) of the paper)")
	fmt.Printf("  inputs: N1=%.0f Nik=%.2f Sik=%.0fB Siv=%.0fB Tj=%v Θ=%.2f R=%.2f Spre=%.0fB position=%s\n\n",
		*n1, *nik, *sik, *siv, *tj, *theta, *r, *spre, position)

	for _, line := range core.ExplainCosts(st, is, env, position) {
		fmt.Println("  " + line)
	}

	plan := core.OptimizeOperator(op, position, st, env, core.DefaultPlannerOptions())
	fmt.Printf("\nchosen plan: %s   (modeled cost %.4f s)\n", plan.String(), plan.Cost)
}

// plainIdx and partitionedIdx are stat-only stand-ins; the optimizer only
// inspects their interfaces, never calls Lookup.
type plainIdx struct{}

func (plainIdx) Name() string                    { return "ix" }
func (plainIdx) Lookup(string) ([]string, error) { return nil, nil }
func (plainIdx) ServeTime() float64              { return 0 }
func (plainIdx) HostsFor(string) []sim.NodeID    { return nil }

type partitionedIdx struct{ plainIdx }

func (partitionedIdx) Scheme() *index.Scheme {
	hosts := make([][]sim.NodeID, 32)
	for i := range hosts {
		hosts[i] = []sim.NodeID{sim.NodeID(i % 12)}
	}
	return &index.Scheme{Partitions: 32, Fn: func(string) int { return 0 }, Hosts: hosts}
}
