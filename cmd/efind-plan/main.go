// Command efind-plan explains EFind's cost-based optimizer: given the
// Table 1 statistics of one index access operation, it prices all five
// strategies — formulas (1)–(4) of the paper plus the adaptive build
// strategy of internal/adaptix — and prints the chosen plan with a cost
// breakdown: a what-if tool for understanding when caching,
// re-partitioning, index locality, or building an index as a job
// side-effect pays off.
//
// Example:
//
//	efind-plan -n1 100000 -nik 1 -sik 20 -siv 1024 -tj 0.8ms -theta 8 -r 0.9
//	efind-plan -theta 1 -r 1 -siv 30720        # distinct keys, big results
//	efind-plan -pos head -build-total 240 -build-covered 60
//	                                           # partially built index: the
//	                                           # fifth strategy's BuildCost
//	                                           # term and break-even run
//	efind-plan -profile BENCH_ci.json          # render a bench profile
//	efind-plan -wal /var/efind/journal         # inspect a job-service WAL
//
// With -build-total > 0 the modeled index is buildable (registry coverage
// -build-covered of -build-total splits): -tj becomes the fully-built
// store's serve time, the blended serve time at current coverage prices
// all strategies, and -explain additionally renders the build strategy's
// registry completeness, BuildCost term, amortized rank, and predicted
// break-even run count. The build strategy applies to head operators only
// (the piggyback stage rides the map scan).
//
// With -profile, the tool instead renders a machine-readable job profile
// written by `efind-bench -profile` as a human-readable report: per-stage
// virtual times, per-index modeled-vs-observed costs, and the sorted
// counter/gauge snapshot.
//
// With -wal, the tool renders a durable job service's write-ahead
// journal directory: one line per record (admissions, grants, phase
// ends, completions, checkpoints), and a final marker when the journal
// ends in a torn frame — the signature of a crash mid-append.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"efind/internal/core"
	"efind/internal/index"
	"efind/internal/jobsvc"
	"efind/internal/obs"
	"efind/internal/sim"
)

func main() {
	var (
		profile = flag.String("profile", "", "render this BENCH profile JSON instead of running the what-if model")
		walDir  = flag.String("wal", "", "render this job-service journal directory instead of running the what-if model")
		explain = flag.Bool("explain", true, "print the per-strategy cost breakdown (false: chosen plan only)")
		n1      = flag.Float64("n1", 50000, "records per parallel lookup lane (Table 1's N1)")
		nik     = flag.Float64("nik", 1, "average lookup keys per record (Nik)")
		sik     = flag.Float64("sik", 20, "average key size in bytes (Sik)")
		siv     = flag.Float64("siv", 1024, "average result size per key in bytes (Siv)")
		tj      = flag.Duration("tj", 800*time.Microsecond, "index serve time per lookup (Tj; the fully-built store's Tj when -build-total > 0)")
		theta   = flag.Float64("theta", 2, "average duplicates per distinct key (Θ)")
		r       = flag.Float64("r", 0.8, "lookup cache miss ratio (R)")
		spre    = flag.Float64("spre", 120, "carrier size after preProcess in bytes (Spre)")
		spost   = flag.Float64("spost", 150, "output size after postProcess in bytes (Spost)")
		pos     = flag.String("pos", "body", "operator position: head, body, or tail")
		part    = flag.Bool("partitioned", true, "index exposes a partition scheme (enables index locality)")
		bw      = flag.Float64("bw", 125e6, "network bandwidth, bytes/s (BW)")
		fCost   = flag.Float64("f", 2.5e-8, "DFS store+retrieve cost, s/byte (f)")
		startup = flag.Float64("startup", 0.005, "task startup, s (drives the extra-job overhead)")

		buildTotal   = flag.Int("build-total", 0, "buildable index: total build units (input splits); 0 = not buildable")
		buildCovered = flag.Int("build-covered", 0, "buildable index: splits already committed in the registry")
		buildScan    = flag.Duration("build-scan", 50*time.Microsecond, "buildable index: scan-fallback serve penalty per uncovered split")
		buildCharge  = flag.Duration("build-charge", 20*time.Microsecond, "buildable index: piggyback build charge per scanned record")
		buildOffer   = flag.Float64("build-offer", 0.25, "buildable index: fraction of total splits offered to build per run")
		buildHorizon = flag.Float64("build-horizon", 0, "build amortization horizon in future runs (0 = default 4, negative disables the build strategy)")
	)
	flag.Parse()

	if *profile != "" {
		p, err := obs.ReadProfile(*profile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-plan: %v\n", err)
			os.Exit(1)
		}
		for _, line := range core.RenderProfile(p) {
			fmt.Println(line)
		}
		return
	}

	if *walDir != "" {
		lines, err := jobsvc.DescribeJournal(*walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-plan: %v\n", err)
			os.Exit(1)
		}
		for _, line := range lines {
			fmt.Println(line)
		}
		return
	}

	env := core.Env{
		BW:          *bw,
		F:           *fCost,
		Tcache:      1e-6,
		Nodes:       96,
		JobOverhead: 4 * *startup,
		LaneFactor:  2,
	}
	is := core.IndexStats{
		Nik: *nik, Sik: *sik, Siv: *siv,
		Tj: tj.Seconds(), Theta: *theta, R: *r,
	}
	st := &core.OperatorStats{
		N1: *n1, Records: int64(*n1 * 96),
		S1: *spre, Spre: *spre, Sidx: *spre + *nik*(*sik+*siv), Spost: *spost, Smap: *spost,
		Index: map[string]core.IndexStats{"ix": is},
	}

	position := core.BodyOp
	switch *pos {
	case "head":
		position = core.HeadOp
	case "tail":
		position = core.TailOp
	case "body":
	default:
		fmt.Fprintf(os.Stderr, "efind-plan: unknown position %q (head|body|tail)\n", *pos)
		os.Exit(1)
	}

	var model core.BuildModel
	buildable := *buildTotal > 0
	if buildable {
		if *buildCovered < 0 || *buildCovered > *buildTotal {
			fmt.Fprintf(os.Stderr, "efind-plan: -build-covered must be in [0, %d]\n", *buildTotal)
			os.Exit(1)
		}
		offer := int(*buildOffer*float64(*buildTotal) + 0.999999)
		if remainder := *buildTotal - *buildCovered; offer > remainder {
			offer = remainder
		}
		if offer < 0 {
			offer = 0
		}
		model = core.BuildModel{
			Covered:   *buildCovered,
			Total:     *buildTotal,
			ScanTime:  buildScan.Seconds(),
			BuildTime: buildCharge.Seconds(),
			Offer:     offer,
			TjIdx:     tj.Seconds(),
		}
		// Every strategy is priced at the blended serve time of the
		// current coverage, exactly as the planner's effective stats do.
		is.Tj = model.TjAt(model.Covered)
		st.Index["ix"] = is
	}

	op := core.NewOperator("what-if", nil, nil)
	var accessor index.Accessor
	switch {
	case buildable && *part:
		accessor = partitionedBuildableIdx{&buildableIdx{model: model}}
	case buildable:
		accessor = &buildableIdx{model: model}
	case *part:
		accessor = partitionedIdx{}
	default:
		accessor = plainIdx{}
	}
	op.AddIndex(accessor)

	opts := core.DefaultPlannerOptions()
	opts.BuildHorizon = *buildHorizon

	if *explain {
		fmt.Println("EFind cost model (per-lane virtual seconds, formulas (1)-(4) of the paper + adaptive build)")
		fmt.Printf("  inputs: N1=%.0f Nik=%.2f Sik=%.0fB Siv=%.0fB Tj=%v Θ=%.2f R=%.2f Spre=%.0fB position=%s\n",
			*n1, *nik, *sik, *siv, *tj, *theta, *r, *spre, position)
		if buildable {
			fmt.Printf("  buildable: %d/%d splits covered, scan=%v/split, charge=%v/record, offer rate %.2f\n",
				model.Covered, model.Total, *buildScan, *buildCharge, *buildOffer)
		}
		fmt.Println()

		for _, line := range core.ExplainCosts(st, is, env, position) {
			fmt.Println("  " + line)
		}
		if buildable {
			horizon := *buildHorizon
			switch {
			case horizon == 0:
				horizon = core.DefaultBuildHorizon
			case horizon < 0:
				horizon = 0
			}
			altOpts := opts
			altOpts.BuildHorizon = -1
			alt := core.OptimizeOperator(op, position, st, env, altOpts).Cost
			for _, line := range core.ExplainBuild(st, is, env, model, horizon, alt) {
				fmt.Println("  " + line)
			}
			if position != core.HeadOp {
				fmt.Println("  build      (only head operators can build: the piggyback stage rides the map scan)")
			}
		}
		fmt.Println()
	}

	plan := core.OptimizeOperator(op, position, st, env, opts)
	fmt.Printf("chosen plan: %s   (modeled cost %.4f s)\n", plan.String(), plan.Cost)
}

// plainIdx and partitionedIdx are stat-only stand-ins; the optimizer only
// inspects their interfaces, never calls Lookup.
type plainIdx struct{}

func (plainIdx) Name() string                    { return "ix" }
func (plainIdx) Lookup(string) ([]string, error) { return nil, nil }
func (plainIdx) ServeTime() float64              { return 0 }
func (plainIdx) HostsFor(string) []sim.NodeID    { return nil }

type partitionedIdx struct{ plainIdx }

func (partitionedIdx) Scheme() *index.Scheme { return whatIfScheme() }

func whatIfScheme() *index.Scheme {
	hosts := make([][]sim.NodeID, 32)
	for i := range hosts {
		hosts[i] = []sim.NodeID{sim.NodeID(i % 12)}
	}
	return &index.Scheme{Partitions: 32, Fn: func(string) int { return 0 }, Hosts: hosts}
}

// buildableIdx is the stat-only stand-in for a partially built adaptix
// index: it reports the flag-configured registry coverage and build
// geometry so the planner derives the same BuildModel the explain
// section renders. The mutating half of the protocol is inert — the
// what-if tool never runs a job.
type buildableIdx struct{ model core.BuildModel }

func (b *buildableIdx) Name() string                    { return "ix" }
func (b *buildableIdx) Lookup(string) ([]string, error) { return nil, nil }
func (b *buildableIdx) HostsFor(string) []sim.NodeID    { return nil }

// ServeTime is the blended serve time at the configured coverage;
// the planner recovers TjIdx from it by subtracting the scan term.
func (b *buildableIdx) ServeTime() float64 { return b.model.TjAt(b.model.Covered) }

func (b *buildableIdx) BuildProgress() (int, int) { return b.model.Covered, b.model.Total }
func (b *buildableIdx) IsBuilt(split int) bool    { return split < b.model.Covered }
func (b *buildableIdx) ScanServeTime() float64    { return b.model.ScanTime }
func (b *buildableIdx) BuildCharge() float64      { return b.model.BuildTime }

func (b *buildableIdx) OfferSplits() []int {
	splits := make([]int, 0, b.model.Offer)
	for s := b.model.Covered; s < b.model.Covered+b.model.Offer && s < b.model.Total; s++ {
		splits = append(splits, s)
	}
	return splits
}

func (b *buildableIdx) Extract(string, string) []index.BuildEntry { return nil }
func (b *buildableIdx) Stage(sim.NodeID, int, []index.BuildEntry) {}
func (b *buildableIdx) SnapshotBuild(sim.NodeID) func()           { return func() {} }
func (b *buildableIdx) ResetBuild(sim.NodeID)                     {}
func (b *buildableIdx) Commit() int                               { return 0 }
func (b *buildableIdx) Abandon()                                  {}

type partitionedBuildableIdx struct{ *buildableIdx }

func (partitionedBuildableIdx) Scheme() *index.Scheme { return whatIfScheme() }
