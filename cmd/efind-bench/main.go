// Command efind-bench regenerates the paper's evaluation (§5): every
// panel of Figure 11, Figure 12, Figure 13, and the ablation studies
// DESIGN.md calls out. Results are virtual times from the calibrated
// cluster simulation; the reproduced claims are the relative shapes.
//
// Usage:
//
//	efind-bench                    # run everything at full scale
//	efind-bench -quick             # run everything at quick (test) scale
//	efind-bench -fig 11a           # run one experiment
//	efind-bench -fig 11f,12        # run several
//	efind-bench -batch             # batched multi-get vs per-key lookups
//	efind-bench -list              # list experiment IDs
//	efind-bench -chaos seed=7      # chaos ablation under fault schedule 7
//	efind-bench -calibrate -quick -fig fstore-sweep   # measured storage costs
//
// The -calibrate mode builds a real mmap-backed snapshot (internal/fstore),
// measures its write throughput, cold- and warm-mapping lookup latencies,
// and index-only probe latency on this machine, prints the measurements,
// and feeds the measured f (store-and-retrieve cost per byte) and T_j
// (per-lookup serve time) into the cost model for the experiments that
// follow — replacing the stipulated constants of sim.DefaultConfig.
//
// The -chaos mode runs the seeded chaos ablation (node crash, stragglers
// with speculative backups, index outage with degradation to baseline)
// and exits 1 if any faulty run's output diverges from the fault-free
// run. Combine with -fig to run other experiments under the same seed.
// The ablation's runs keep private traces (each row is judged on its own
// isolated counters), so -trace captures only the regular experiments;
// chaos trace instants (crash:node, speculate:, reopt:failure) are
// pinned by the Chaos test suites instead.
//
// Observability (all virtual time, bit-identical across serial and
// parallel executions of the same seed):
//
//	efind-bench -quick -fig 11f -trace trace.json   # Chrome trace (Perfetto)
//	efind-bench -quick -fig 11f,12 -profile BENCH_ci.json -label ci
//	efind-bench -quick -fig 11f,12 -profile BENCH_ci.json -gate BENCH_baseline.json
//
// With -gate, the run's profile is compared against the baseline profile
// and the command exits 1 if any stage's virtual time (or any latency
// gauge) regressed by more than -gate-tol.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"efind/internal/experiments"
	"efind/internal/fstore"
	"efind/internal/obs"
)

func main() {
	var (
		fig        = flag.String("fig", "", "comma-separated experiment IDs to run (default: all)")
		quick      = flag.Bool("quick", false, "use the quick (test) scale instead of full scale")
		batch      = flag.Bool("batch", false, "run the batched multi-get vs per-key lookup comparison (Fig. 11(f) sweep)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (open in Perfetto)")
		profileOut = flag.String("profile", "", "write the machine-readable job profile (BENCH JSON) to this file")
		label      = flag.String("label", "bench", "label recorded in the -profile output")
		gate       = flag.String("gate", "", "baseline BENCH JSON to gate against; exit 1 on regression beyond -gate-tol")
		gateTol    = flag.Float64("gate-tol", 0.10, "per-stage virtual-time regression budget for -gate (0.10 = +10%)")
		chaosSeed  = flag.String("chaos", "", "run the chaos ablation under this fault-schedule seed (seed=N or N)")
		calibrate  = flag.Bool("calibrate", false, "measure real snapshot store latencies (write, cold mmap read, warm lookups, index-only probes) on this machine and feed the measured f and T_j into the cost model")
		calOut     = flag.String("calibrate-out", "", "with -calibrate, also write the measured calibration profile as JSON to this file")
	)
	flag.Parse()

	if *chaosSeed != "" {
		seed, err := parseChaosSeed(*chaosSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: %v\n", err)
			os.Exit(1)
		}
		experiments.ChaosSeed = seed
		if *fig == "" {
			*fig = "ablation-chaos"
		}
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Description)
		}
		return
	}

	scale := experiments.FullScale()
	scaleName := "full"
	if *quick {
		scale = experiments.QuickScale()
		scaleName = "quick"
	}

	run := experiments.All()
	if *batch {
		run = []experiments.Experiment{*experiments.Find("batchcmp")}
	}
	if *fig != "" {
		run = nil
		for _, id := range strings.Split(*fig, ",") {
			id = strings.TrimSpace(id)
			e := experiments.Find(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "efind-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			run = append(run, *e)
		}
	}

	var tr *obs.Trace
	if *traceOut != "" || *profileOut != "" || *gate != "" {
		tr = obs.NewTrace()
		experiments.SetTrace(tr)
	}

	if *calibrate {
		cal, err := fstore.Calibrate(os.TempDir(), fstore.DefaultCalibrateConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: calibration failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("storage calibration (mmap=%v): %s\n\n", fstore.MmapAvailable(), cal)
		experiments.SetCalibration(&cal)
		if tr != nil {
			// Wall-clock measurements, so deliberately NOT named *.vms /
			// *.tps: they are recorded in the profile for inspection but
			// never gated — machine variance is the signal here, not a
			// regression.
			tr.Metrics.SetGauge("calibrate.f.s_per_byte", cal.F)
			tr.Metrics.SetGauge("calibrate.tj.cold.s", cal.TjCold)
			tr.Metrics.SetGauge("calibrate.tj.warm.s", cal.TjWarm)
			tr.Metrics.SetGauge("calibrate.tj.probe.s", cal.TjProbe)
			tr.Metrics.SetGauge("calibrate.write.bytes_per_s", cal.WriteBytesPerSec)
			tr.Metrics.SetGauge("calibrate.read.bytes_per_s", cal.ReadBytesPerSec)
		}
		if *calOut != "" {
			data, err := json.MarshalIndent(struct {
				MmapAvailable bool `json:"mmap_available"`
				fstore.Calibration
			}{fstore.MmapAvailable(), cal}, "", " ")
			if err == nil {
				err = os.WriteFile(*calOut, append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "efind-bench: writing %s: %v\n", *calOut, err)
				os.Exit(1)
			}
			fmt.Printf("wrote calibration profile to %s\n\n", *calOut)
		}
	}

	fmt.Printf("EFind evaluation harness — %d experiment(s) at %s scale\n\n", len(run), scaleName)
	for _, e := range run {
		if tr != nil {
			tr.SetSection(e.ID)
		}
		start := time.Now()
		tbl, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		tbl.Print(os.Stdout)
		fmt.Printf("  (wall time %.1fs)\n\n", time.Since(start).Seconds())
	}

	if tr == nil {
		return
	}
	if *traceOut != "" {
		if err := writeTrace(tr, *traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	prof := tr.Profile(*label)
	if *profileOut != "" {
		if err := prof.WriteFile(*profileOut); err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote job profile to %s\n", *profileOut)
	}
	if *gate != "" {
		base, err := obs.ReadProfile(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: %v\n", err)
			os.Exit(1)
		}
		regressions := obs.CompareProfiles(base, prof, *gateTol)
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "efind-bench: %d regression(s) vs %s:\n", len(regressions), *gate)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("benchmark gate passed: no stage regressed beyond %+.0f%% vs %s\n", *gateTol*100, *gate)
	}
}

// parseChaosSeed accepts "seed=N" (the documented spelling) or bare "N".
func parseChaosSeed(s string) (int64, error) {
	s = strings.TrimPrefix(s, "seed=")
	seed, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid -chaos value %q: want seed=N", s)
	}
	return seed, nil
}

// writeTrace writes the Chrome trace-event file.
func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
