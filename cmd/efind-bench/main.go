// Command efind-bench regenerates the paper's evaluation (§5): every
// panel of Figure 11, Figure 12, Figure 13, and the ablation studies
// DESIGN.md calls out. Results are virtual times from the calibrated
// cluster simulation; the reproduced claims are the relative shapes.
//
// Usage:
//
//	efind-bench              # run everything at full scale
//	efind-bench -quick       # run everything at quick (test) scale
//	efind-bench -fig 11a     # run one experiment
//	efind-bench -batch       # compare batched multi-get vs per-key lookups
//	efind-bench -list        # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"efind/internal/experiments"
)

func main() {
	var (
		fig   = flag.String("fig", "", "experiment ID to run (default: all)")
		quick = flag.Bool("quick", false, "use the quick (test) scale instead of full scale")
		batch = flag.Bool("batch", false, "run the batched multi-get vs per-key lookup comparison (Fig. 11(f) sweep)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n", e.ID, e.Description)
		}
		return
	}

	scale := experiments.FullScale()
	scaleName := "full"
	if *quick {
		scale = experiments.QuickScale()
		scaleName = "quick"
	}

	run := experiments.All()
	if *batch {
		run = []experiments.Experiment{*experiments.Find("batchcmp")}
	}
	if *fig != "" {
		e := experiments.Find(*fig)
		if e == nil {
			fmt.Fprintf(os.Stderr, "efind-bench: unknown experiment %q (try -list)\n", *fig)
			os.Exit(1)
		}
		run = []experiments.Experiment{*e}
	}

	fmt.Printf("EFind evaluation harness — %d experiment(s) at %s scale\n\n", len(run), scaleName)
	for _, e := range run {
		start := time.Now()
		tbl, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efind-bench: experiment %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		tbl.Print(os.Stdout)
		fmt.Printf("  (wall time %.1fs)\n\n", time.Since(start).Seconds())
	}
}
