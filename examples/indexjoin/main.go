// Command indexjoin runs TPC-H Q3 and Q9 as EFind index nested-loop
// joins and compares the paper's access strategies side by side: the
// LineItem table is the MapReduce input and the remaining tables are
// served by distributed KV indices.
//
// Run with:
//
//	go run ./examples/indexjoin
package main

import (
	"fmt"
	"log"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/mapreduce"
	"efind/internal/sim"
	"efind/internal/tpch"
)

func main() {
	fmt.Println("TPC-H index nested-loop joins through EFind")
	fmt.Println()
	runQuery("Q3", buildQ3)
	fmt.Println()
	runQuery("Q9", buildQ9)
}

type jobBuilder func(w *tpch.Workload, name string, mode core.Mode) (*core.IndexJobConf, string, string)

func buildQ3(w *tpch.Workload, name string, mode core.Mode) (*core.IndexJobConf, string, string) {
	conf := w.Q3Conf(name, mode)
	op, ix := w.Q3RepartTarget()
	return conf, op, ix
}

func buildQ9(w *tpch.Workload, name string, mode core.Mode) (*core.IndexJobConf, string, string) {
	conf := w.Q9Conf(name, mode)
	op, ix := w.Q9RepartTarget()
	return conf, op, ix
}

func runQuery(label string, build jobBuilder) {
	fmt.Printf("=== %s ===\n", label)
	type runSpec struct {
		name  string
		mode  core.Mode
		strat core.Strategy
		force bool
	}
	for _, spec := range []runSpec{
		{"baseline", core.ModeBaseline, 0, false},
		{"cache", core.ModeCache, 0, false},
		{"repart", core.ModeCustom, core.Repartition, true},
		{"dynamic", core.ModeDynamic, 0, false},
	} {
		// Fresh environment per run so caches and statistics cannot leak.
		cfg := sim.DefaultConfig()
		cfg.TaskStartup = 0.005
		cluster := sim.NewCluster(cfg)
		fs := dfs.New(cluster)
		fs.ChunkTarget = 4 << 10
		rt := core.NewRuntime(mapreduce.New(cluster, fs))

		tcfg := tpch.DefaultConfig()
		tcfg.ScaleFactor = 2
		tcfg.SupplierScale = 75
		w, err := tpch.Setup(fs, "lineitem", tcfg)
		if err != nil {
			log.Fatal(err)
		}

		conf, op, ix := build(w, label+"-"+spec.name, spec.mode)
		conf.CacheCapacity = 64
		if spec.force {
			conf.ForceStrategy(op, ix, spec.strat)
		}
		w.ResetIndexStats()
		res, err := rt.Submit(conf)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if res.Replanned {
			extra = fmt.Sprintf("  (replanned at %s phase to %v)", res.ReplanPhase, res.Plan)
		}
		fmt.Printf("  %-9s %8.3f virtual s  %7d index lookups  %d job(s)  %d result groups%s\n",
			spec.name, res.VTime, w.TotalLookups(), res.JobsRun, res.Output.Records(), extra)
	}
}
