// Command tweettopics implements Example 2.1 of the paper end to end: an
// analyst computes the top-k popular Twitter topics per (city, day) and
// enriches them with news events. The job touches three indices at three
// different points of the MapReduce data flow:
//
//  1. a user-profile index (distributed KV store) looked up BEFORE Map to
//     resolve each tweet's city;
//  2. a knowledge-base cloud service invoked BETWEEN Map and Reduce that
//     dynamically computes a topic from extracted keywords (a classifier:
//     the set of valid keys is infinite);
//  3. an event database looked up AFTER Reduce to attach important news
//     events to each (city, day) group.
//
// Run with:
//
//	go run ./examples/tweettopics
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"efind"
)

const topK = 3

func main() {
	cfg := efind.DefaultConfig()
	cfg.TaskStartup = 0.01
	cluster := efind.NewCluster(cfg)
	cluster.FS.ChunkTarget = 8 << 10

	userProfiles, events := buildIndices(cluster)
	topics := cluster.NewCloudService("knowledge-base", 3, 0.002, classifyTopic)
	input := buildTweets(cluster)

	// Step 1: look up the user account in the profile index to obtain the
	// city (placed before Map).
	profileOp := efind.NewOperator("user-profile",
		func(in efind.Pair) efind.PreResult {
			user := strings.SplitN(in.Value, "\t", 2)[0]
			return efind.PreResult{Pair: in, Keys: [][]string{{user}}}
		},
		func(pair efind.Pair, results [][]efind.KeyResult, emit efind.Emit) {
			if len(results[0]) == 0 || len(results[0][0].Values) == 0 {
				return
			}
			city := extractCity(results[0][0].Values[0])
			emit(efind.Pair{Key: pair.Key, Value: city + "\t" + pair.Value})
		})
	profileOp.AddIndex(userProfiles)

	// Step 3: convert extracted keywords into a topic via the knowledge
	// base (placed between Map and Reduce).
	topicOp := efind.NewOperator("topic-category",
		func(in efind.Pair) efind.PreResult {
			// Map emitted key=(city|day), value=keywords.
			return efind.PreResult{Pair: in, Keys: [][]string{{in.Value}}}
		},
		func(pair efind.Pair, results [][]efind.KeyResult, emit efind.Emit) {
			if len(results[0]) == 0 || len(results[0][0].Values) == 0 {
				return
			}
			emit(efind.Pair{Key: pair.Key, Value: results[0][0].Values[0]})
		})
	topicOp.AddIndex(topics)

	// Step 5: enrich each (city, day) result with important events
	// (placed after Reduce).
	eventOp := efind.NewOperator("important-events",
		func(in efind.Pair) efind.PreResult {
			return efind.PreResult{Pair: in, Keys: [][]string{{in.Key}}}
		},
		func(pair efind.Pair, results [][]efind.KeyResult, emit efind.Emit) {
			event := "no major events"
			if len(results[0]) > 0 && len(results[0][0].Values) > 0 {
				event = strings.Join(results[0][0].Values, "; ")
			}
			emit(efind.Pair{Key: pair.Key, Value: pair.Value + "  [events: " + event + "]"})
		})
	eventOp.AddIndex(events)

	conf := &efind.IndexJobConf{
		Name:  "tweet-topics",
		Input: input,
		Mode:  efind.ModeDynamic,
		// Step 2: Map extracts keywords and the (city, day) group key.
		Mapper: func(_ *efind.TaskContext, in efind.Pair, emit efind.Emit) {
			// Value layout after the profile operator:
			// city \t user \t tweetid \t timestamp \t message.
			f := strings.Split(in.Value, "\t")
			if len(f) < 5 {
				return
			}
			city, ts, message := f[0], f[3], f[4]
			day, err := strconv.Atoi(ts)
			if err != nil {
				return
			}
			emit(efind.Pair{
				Key:   fmt.Sprintf("%s|day-%02d", city, day%30),
				Value: extractKeywords(message),
			})
		},
		NumReduce: 12,
		// Step 4: group by (city, day) and compute the top-k topics.
		Reducer: func(_ *efind.TaskContext, key string, values []string, emit efind.Emit) {
			counts := map[string]int{}
			for _, topic := range values {
				counts[topic]++
			}
			type tc struct {
				topic string
				n     int
			}
			list := make([]tc, 0, len(counts))
			for topic, n := range counts {
				list = append(list, tc{topic, n})
			}
			sort.Slice(list, func(i, j int) bool {
				if list[i].n != list[j].n {
					return list[i].n > list[j].n
				}
				return list[i].topic < list[j].topic
			})
			if len(list) > topK {
				list = list[:topK]
			}
			parts := make([]string, 0, len(list))
			for _, e := range list {
				parts = append(parts, fmt.Sprintf("%s(%d)", e.topic, e.n))
			}
			emit(efind.Pair{Key: key, Value: strings.Join(parts, " ")})
		},
	}
	conf.AddHeadIndexOperator(profileOp)
	conf.AddBodyIndexOperator(topicOp)
	conf.AddTailIndexOperator(eventOp)

	res, err := cluster.Submit(conf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tweet-topics finished: %.3f virtual seconds, %d MapReduce job(s), plan %v\n",
		res.VTime, res.JobsRun, res.Plan)
	if res.Replanned {
		fmt.Printf("runtime re-optimized at the %s phase\n", res.ReplanPhase)
	}
	fmt.Printf("knowledge-base service was invoked %d times\n\n", topics.Calls())

	out := res.Output.All()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	for i, r := range out {
		if i == 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-24s %s\n", r.Key, r.Value)
	}
}

// buildIndices loads the user-profile store and the event database.
func buildIndices(cluster *efind.Cluster) (*efind.KVStore, *efind.KVStore) {
	cities := []string{"Beijing", "NewYork", "London", "Paris", "Tokyo", "Sydney"}
	profiles := cluster.NewKVStore("user-profiles", 32, 3, 0.0008)
	for u := 0; u < 400; u++ {
		city := cities[u%len(cities)]
		profiles.Put(fmt.Sprintf("@user%03d", u), fmt.Sprintf("name=User%03d;city=%s;since=2009", u, city))
	}
	events := cluster.NewKVStore("event-db", 8, 3, 0.0005)
	for _, city := range cities {
		for day := 0; day < 30; day += 3 {
			events.Put(fmt.Sprintf("%s|day-%02d", city, day),
				fmt.Sprintf("%s street festival on day %d", city, day))
		}
	}
	return profiles, events
}

// buildTweets writes the main input: user \t tweetid \t timestamp \t message.
func buildTweets(cluster *efind.Cluster) *efind.File {
	words := []string{"election", "football", "earthquake", "concert", "market",
		"rain", "startup", "festival", "traffic", "olympics"}
	recs := make([]efind.Record, 12000)
	for i := range recs {
		msg := fmt.Sprintf("the %s and the %s today", words[i%len(words)], words[(i/3)%len(words)])
		recs[i] = efind.Record{
			Key:   fmt.Sprintf("tweet-%06d", i),
			Value: fmt.Sprintf("@user%03d\tt%06d\t%d\t%s", i%400, i, i%30, msg),
		}
	}
	f, err := cluster.CreateFile("tweets", recs)
	if err != nil {
		log.Fatal(err)
	}
	return f
}

// extractCity pulls the city field from a profile record.
func extractCity(profile string) string {
	for _, kv := range strings.Split(profile, ";") {
		if strings.HasPrefix(kv, "city=") {
			return strings.TrimPrefix(kv, "city=")
		}
	}
	return "unknown"
}

// extractKeywords is the Map step's keyword extraction.
func extractKeywords(message string) string {
	var kws []string
	for _, w := range strings.Fields(message) {
		if len(w) > 4 { // drop stop-words
			kws = append(kws, w)
		}
	}
	sort.Strings(kws)
	return strings.Join(kws, ",")
}

// classifyTopic is the knowledge-base service's dynamic computation: it
// "classifies" a keyword set into a topic (a deterministic stand-in for
// the paper's machine-learning classifiers).
func classifyTopic(keywords string) []string {
	topics := []string{"politics", "sports", "disaster", "culture", "economy", "weather", "tech"}
	h := 0
	for _, b := range []byte(keywords) {
		h = h*31 + int(b)
	}
	if h < 0 {
		h = -h
	}
	return []string{topics[h%len(topics)]}
}
