// Command quickstart is the smallest complete EFind program: enrich a
// stream of order records with product metadata from a distributed
// key-value index, letting the adaptive runtime pick the access strategy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"efind"
)

func main() {
	// A simulated 12-node cluster with DFS, MapReduce, and EFind runtime.
	cfg := efind.DefaultConfig()
	cfg.TaskStartup = 0.01
	cluster := efind.NewCluster(cfg)
	cluster.FS.ChunkTarget = 1 << 10 // small chunks so the job spans several task waves

	// The "index": a distributed KV store holding product metadata,
	// 32 partitions × 3 replicas, 2 ms per lookup.
	products := cluster.NewKVStore("products", 32, 3, 0.002)
	for i := 0; i < 200; i++ {
		products.Put(fmt.Sprintf("sku-%03d", i), fmt.Sprintf("category-%d|$%d", i%12, 5+i%40))
	}

	// The main input: order lines referencing SKUs. SKUs repeat, so the
	// runtime has redundancy to exploit.
	records := make([]efind.Record, 5000)
	for i := range records {
		records[i] = efind.Record{
			Key:   fmt.Sprintf("order-%05d", i),
			Value: fmt.Sprintf("sku-%03d", i%200),
		}
	}
	input, err := cluster.CreateFile("orders", records)
	if err != nil {
		log.Fatal(err)
	}

	// The IndexOperator: preProcess extracts the SKU as the lookup key,
	// postProcess re-keys each order by product category.
	op := efind.NewOperator("product-lookup",
		func(in efind.Pair) efind.PreResult {
			return efind.PreResult{Pair: in, Keys: [][]string{{in.Value}}}
		},
		func(pair efind.Pair, results [][]efind.KeyResult, emit efind.Emit) {
			if len(results[0]) == 0 || len(results[0][0].Values) == 0 {
				return // unknown SKU: filter out
			}
			emit(efind.Pair{Key: results[0][0].Values[0], Value: pair.Key})
		})
	op.AddIndex(products)

	// An EFind-enhanced job: the operator runs before Map; Reduce counts
	// orders per product metadata group. ModeDynamic starts with the
	// baseline plan, collects statistics during the first task wave, and
	// re-optimizes on the fly.
	conf := &efind.IndexJobConf{
		Name:      "orders-by-category",
		Input:     input,
		Mode:      efind.ModeDynamic,
		NumReduce: 8,
		Reducer: func(_ *efind.TaskContext, key string, values []string, emit efind.Emit) {
			emit(efind.Pair{Key: key, Value: fmt.Sprintf("%d orders", len(values))})
		},
	}
	conf.AddHeadIndexOperator(op)

	res, err := cluster.Submit(conf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("job finished in %.3f virtual seconds across %d MapReduce job(s)\n", res.VTime, res.JobsRun)
	fmt.Printf("plan: %v\n", res.Plan)
	if res.Replanned {
		fmt.Printf("the runtime re-optimized mid-job (at the %s phase)\n", res.ReplanPhase)
	}
	fmt.Printf("index served %d lookups for %d input records\n\n", products.Lookups(), len(records))
	for i, r := range res.Output.All() {
		if i == 10 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-22s %s\n", r.Key, r.Value)
	}
}
