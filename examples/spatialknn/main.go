// Command spatialknn reproduces the k-nearest-neighbour join comparison
// of §5.4 interactively: the same join runs (a) through EFind as an index
// nested-loop over a grid of R*-trees and (b) through the hand-tuned
// H-zkNNJ implementation, printing runtimes and result quality.
//
// Run with:
//
//	go run ./examples/spatialknn
package main

import (
	"fmt"
	"log"

	"efind/internal/core"
	"efind/internal/dfs"
	"efind/internal/knnj"
	"efind/internal/mapreduce"
	"efind/internal/sim"
	"efind/internal/workloads"
)

const k = 10

func main() {
	// Two point sets, OSM-like (clustered around hot spots).
	a := workloads.GenerateSpatialPoints(workloads.SpatialConfig{Points: 2000, Extent: 1000, Clusters: 16, Seed: 5})
	b := workloads.GenerateSpatialPoints(workloads.SpatialConfig{Points: 10000, Extent: 1000, Clusters: 16, Seed: 6})
	for i := range b {
		b[i].ID = fmt.Sprintf("b%07d", i)
	}
	exact := knnj.BruteForceKNN(a, b, k)

	fmt.Printf("kNN join: |A|=%d query points, |B|=%d indexed points, k=%d\n\n", len(a), len(b), k)

	// Hand-tuned comparator.
	{
		cluster, fs, engine := newEnv()
		_ = cluster
		_ = fs
		cfg := knnj.DefaultHZConfig(k)
		cfg.Epsilon = 0.02
		res, err := knnj.RunHZKNNJ(engine, a, b, 1000, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8.3f virtual s  recall %.3f  (%d MapReduce jobs, α=%d shifts)\n",
			"H-zkNNJ", res.VTime, knnj.Recall(res.Join, exact), res.Jobs, cfg.Alpha)
	}

	// EFind: a dozen lines of operator code, every strategy for free.
	for _, spec := range []struct {
		label string
		mode  core.Mode
		strat core.Strategy
		force bool
	}{
		{"EFind baseline", core.ModeBaseline, 0, false},
		{"EFind idxloc", core.ModeCustom, core.IndexLocality, true},
		{"EFind dynamic", core.ModeDynamic, 0, false},
	} {
		cluster, fs, engine := newEnv()
		rt := core.NewRuntime(engine)
		idxCfg := knnj.DefaultSpatialIndexConfig(1000)
		idxCfg.K = k
		idx, err := knnj.BuildSpatialIndex(cluster, "spatial", b, idxCfg)
		if err != nil {
			log.Fatal(err)
		}
		input, err := workloads.WriteSpatial(fs, "a-points", a)
		if err != nil {
			log.Fatal(err)
		}
		conf := knnj.EFindConf("knn", input, idx, spec.mode)
		if spec.force {
			conf.ForceStrategy("knn", idx.Name(), spec.strat)
		}
		res, err := rt.Submit(conf)
		if err != nil {
			log.Fatal(err)
		}
		join := knnj.CollectJoin(res.Output)
		fmt.Printf("  %-18s %8.3f virtual s  recall %.3f  (%d MapReduce jobs, plan %v)\n",
			spec.label, res.VTime, knnj.Recall(join, exact), res.JobsRun, res.Plan)
	}
}

func newEnv() (*sim.Cluster, *dfs.FS, *mapreduce.Engine) {
	cfg := sim.DefaultConfig()
	cfg.TaskStartup = 0.005
	cluster := sim.NewCluster(cfg)
	fs := dfs.New(cluster)
	fs.ChunkTarget = 4 << 10
	return cluster, fs, mapreduce.New(cluster, fs)
}
